// Package policyio reads and writes policies in a line-oriented text
// format, so rule sets can be stored in files, diffed, and loaded into
// difanectl or user programs:
//
//	# comment
//	rule 1 prio 100 ip_src=10.0.0.0/8 tp_dst=80 -> forward(4)
//	rule 2 prio 90  ip_proto=udp tp_dst=53 -> drop
//	rule 3 prio 0   -> drop
//
// Field syntax per key:
//
//	ip_src, ip_dst     dotted quad with optional /prefix
//	tp_src, tp_dst     port number, or lo-hi range (expands to prefixes,
//	                   emitting several rules sharing id/priority/action)
//	ip_proto           tcp | udp | icmp | number
//	eth_type           hex (0x0800) or decimal
//	vlan, in_port      number
//	eth_src, eth_dst   aa:bb:cc:dd:ee:ff
//
// Actions: forward(N), redirect(N), drop, count.
package policyio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"difane/internal/flowspace"
	"difane/internal/packet"
)

// Parse reads a policy from r. Range-valued port fields expand one
// logical line into several rules (same ID is not legal twice otherwise,
// so expanded rules get suffixed IDs id*1000+i to stay unique).
func Parse(r io.Reader) ([]flowspace.Rule, error) {
	var rules []flowspace.Rule
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rs, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		rules = append(rules, rs...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rules, nil
}

// ParseRule parses one "rule ..." line, possibly expanding port ranges
// into multiple rules.
func ParseRule(line string) ([]flowspace.Rule, error) {
	arrow := strings.Index(line, "->")
	if arrow < 0 {
		return nil, fmt.Errorf("missing \"->\" action separator")
	}
	head := strings.Fields(line[:arrow])
	actionStr := strings.TrimSpace(line[arrow+2:])

	if len(head) < 4 || head[0] != "rule" || head[2] != "prio" {
		return nil, fmt.Errorf("expected \"rule <id> prio <p> [fields...]\"")
	}
	id, err := strconv.ParseUint(head[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad rule id %q", head[1])
	}
	prio, err := strconv.ParseInt(head[3], 10, 32)
	if err != nil {
		return nil, fmt.Errorf("bad priority %q", head[3])
	}
	action, err := parseAction(actionStr)
	if err != nil {
		return nil, err
	}

	match := flowspace.MatchAll()
	var portRanges []portRange
	for _, tok := range head[4:] {
		kv := strings.SplitN(tok, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad field %q (want key=value)", tok)
		}
		key, val := kv[0], kv[1]
		switch key {
		case "ip_src", "ip_dst":
			f := flowspace.FIPSrc
			if key == "ip_dst" {
				f = flowspace.FIPDst
			}
			addr, plen, err := parseCIDR(val)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", key, err)
			}
			match = match.WithPrefix(f, uint64(addr), plen)
		case "tp_src", "tp_dst":
			f := flowspace.FTPSrc
			if key == "tp_dst" {
				f = flowspace.FTPDst
			}
			lo, hi, err := parsePortOrRange(val)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", key, err)
			}
			if lo == hi {
				match = match.WithExact(f, lo)
			} else {
				portRanges = append(portRanges, portRange{field: f, lo: lo, hi: hi})
			}
		case "ip_proto":
			p, err := parseProto(val)
			if err != nil {
				return nil, err
			}
			match = match.WithExact(flowspace.FIPProto, uint64(p))
		case "eth_type":
			v, err := strconv.ParseUint(strings.TrimPrefix(val, "0x"), hexBase(val), 16)
			if err != nil {
				return nil, fmt.Errorf("eth_type: %w", err)
			}
			match = match.WithExact(flowspace.FEthType, v)
		case "vlan":
			v, err := strconv.ParseUint(val, 10, 12)
			if err != nil {
				return nil, fmt.Errorf("vlan: %w", err)
			}
			match = match.WithExact(flowspace.FVLAN, v)
		case "in_port":
			v, err := strconv.ParseUint(val, 10, 16)
			if err != nil {
				return nil, fmt.Errorf("in_port: %w", err)
			}
			match = match.WithExact(flowspace.FInPort, v)
		case "eth_src", "eth_dst":
			f := flowspace.FEthSrc
			if key == "eth_dst" {
				f = flowspace.FEthDst
			}
			mac, err := parseMAC(val)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", key, err)
			}
			match = match.WithExact(f, mac)
		default:
			return nil, fmt.Errorf("unknown field %q", key)
		}
	}

	base := flowspace.Rule{ID: id, Priority: int32(prio), Match: match, Action: action}
	if len(portRanges) == 0 {
		return []flowspace.Rule{base}, nil
	}
	if len(portRanges) > 1 {
		return nil, fmt.Errorf("at most one port range per rule")
	}
	pr := portRanges[0]
	fields := flowspace.RangeToFields(pr.lo, pr.hi, 16)
	if len(fields) == 1 {
		// Aligned range: one ternary field, no renumbering needed.
		base.Match = base.Match.With(pr.field, fields[0])
		return []flowspace.Rule{base}, nil
	}
	out := make([]flowspace.Rule, 0, len(fields))
	for i, fd := range fields {
		r := base
		r.ID = id*1000 + uint64(i)
		r.Match = base.Match.With(pr.field, fd)
		out = append(out, r)
	}
	return out, nil
}

type portRange struct {
	field  flowspace.FieldID
	lo, hi uint64
}

func hexBase(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

func parseAction(s string) (flowspace.Action, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "drop":
		return flowspace.Action{Kind: flowspace.ActDrop}, nil
	case s == "count":
		return flowspace.Action{Kind: flowspace.ActCount}, nil
	case strings.HasPrefix(s, "forward(") && strings.HasSuffix(s, ")"):
		v, err := strconv.ParseUint(s[8:len(s)-1], 10, 32)
		if err != nil {
			return flowspace.Action{}, fmt.Errorf("forward: %w", err)
		}
		return flowspace.Action{Kind: flowspace.ActForward, Arg: uint32(v)}, nil
	case strings.HasPrefix(s, "redirect(") && strings.HasSuffix(s, ")"):
		v, err := strconv.ParseUint(s[9:len(s)-1], 10, 32)
		if err != nil {
			return flowspace.Action{}, fmt.Errorf("redirect: %w", err)
		}
		return flowspace.Action{Kind: flowspace.ActRedirect, Arg: uint32(v)}, nil
	default:
		return flowspace.Action{}, fmt.Errorf("unknown action %q", s)
	}
}

func parseCIDR(s string) (uint32, uint, error) {
	addrStr, plenStr, hasPlen := strings.Cut(s, "/")
	parts := strings.Split(addrStr, ".")
	if len(parts) != 4 {
		return 0, 0, fmt.Errorf("bad address %q", addrStr)
	}
	var addr uint32
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, 0, fmt.Errorf("bad address octet %q", p)
		}
		addr = addr<<8 | uint32(v)
	}
	plen := uint(32)
	if hasPlen {
		v, err := strconv.ParseUint(plenStr, 10, 8)
		if err != nil || v > 32 {
			return 0, 0, fmt.Errorf("bad prefix length %q", plenStr)
		}
		plen = uint(v)
	}
	return addr, plen, nil
}

func parsePortOrRange(s string) (lo, hi uint64, err error) {
	loStr, hiStr, isRange := strings.Cut(s, "-")
	lo, err = strconv.ParseUint(loStr, 10, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("bad port %q", loStr)
	}
	if !isRange {
		return lo, lo, nil
	}
	hi, err = strconv.ParseUint(hiStr, 10, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("bad port %q", hiStr)
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("inverted range %q", s)
	}
	return lo, hi, nil
}

func parseProto(s string) (uint8, error) {
	switch strings.ToLower(s) {
	case "tcp":
		return packet.ProtoTCP, nil
	case "udp":
		return packet.ProtoUDP, nil
	case "icmp":
		return packet.ProtoICMP, nil
	}
	v, err := strconv.ParseUint(s, 10, 8)
	if err != nil {
		return 0, fmt.Errorf("bad ip_proto %q", s)
	}
	return uint8(v), nil
}

func parseMAC(s string) (uint64, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return 0, fmt.Errorf("bad MAC %q", s)
	}
	var mac uint64
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return 0, fmt.Errorf("bad MAC octet %q", p)
		}
		mac = mac<<8 | v
	}
	return mac, nil
}

// Write serializes rules to w, one line each, in the format Parse reads.
// Ternary fields that are neither wildcards nor exact values nor prefixes
// cannot arise from Parse but can from cache-rule generation; they render
// as raw value/mask pairs that Parse rejects, so Write reports them as an
// error rather than producing an unreadable file.
func Write(w io.Writer, rules []flowspace.Rule) error {
	bw := bufio.NewWriter(w)
	for _, r := range rules {
		if err := writeRule(bw, r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeRule(w *bufio.Writer, r flowspace.Rule) error {
	fmt.Fprintf(w, "rule %d prio %d", r.ID, r.Priority)
	for f := flowspace.FieldID(0); f < flowspace.NumFields; f++ {
		fd := r.Match.Fields[f]
		if fd.IsWildcard() {
			continue
		}
		s, err := formatField(f, fd)
		if err != nil {
			return fmt.Errorf("rule %d: %w", r.ID, err)
		}
		fmt.Fprintf(w, " %s", s)
	}
	act, err := formatAction(r.Action)
	if err != nil {
		return fmt.Errorf("rule %d: %w", r.ID, err)
	}
	fmt.Fprintf(w, " -> %s\n", act)
	return nil
}

func formatField(f flowspace.FieldID, fd flowspace.Field) (string, error) {
	w := f.Width()
	switch f {
	case flowspace.FIPSrc, flowspace.FIPDst:
		plen, ok := prefixLen(fd, w)
		if !ok {
			return "", fmt.Errorf("%s is not a prefix", f)
		}
		return fmt.Sprintf("%s=%s/%d", f, packet.IPString(uint32(fd.Value)), plen), nil
	case flowspace.FEthSrc, flowspace.FEthDst:
		if !fd.IsExact(w) {
			return "", fmt.Errorf("%s must be exact", f)
		}
		v := fd.Value
		return fmt.Sprintf("%s=%02x:%02x:%02x:%02x:%02x:%02x", f,
			byte(v>>40), byte(v>>32), byte(v>>24), byte(v>>16), byte(v>>8), byte(v)), nil
	case flowspace.FEthType:
		if !fd.IsExact(w) {
			return "", fmt.Errorf("%s must be exact", f)
		}
		return fmt.Sprintf("%s=0x%04x", f, fd.Value), nil
	case flowspace.FTPSrc, flowspace.FTPDst:
		if fd.IsExact(w) {
			return fmt.Sprintf("%s=%d", f, fd.Value), nil
		}
		// A port prefix is an aligned range: render it as lo-hi, which
		// Parse expands back to exactly this one field.
		plen, ok := prefixLen(fd, w)
		if !ok {
			return "", fmt.Errorf("%s has a non-contiguous mask", f)
		}
		lo := fd.Value
		hi := fd.Value | (uint64(1)<<(w-plen) - 1)
		return fmt.Sprintf("%s=%d-%d", f, lo, hi), nil
	default:
		if !fd.IsExact(w) {
			return "", fmt.Errorf("%s must be exact", f)
		}
		return fmt.Sprintf("%s=%d", f, fd.Value), nil
	}
}

// prefixLen reports whether the field is a prefix (contiguous high mask)
// and its length.
func prefixLen(fd flowspace.Field, w uint) (uint, bool) {
	var plen uint
	seenZero := false
	for i := int(w) - 1; i >= 0; i-- {
		bit := fd.Mask & (1 << uint(i))
		if bit != 0 {
			if seenZero {
				return 0, false // non-contiguous mask
			}
			plen++
		} else {
			seenZero = true
		}
	}
	return plen, true
}

func formatAction(a flowspace.Action) (string, error) {
	switch a.Kind {
	case flowspace.ActDrop:
		return "drop", nil
	case flowspace.ActCount:
		return "count", nil
	case flowspace.ActForward:
		return fmt.Sprintf("forward(%d)", a.Arg), nil
	case flowspace.ActRedirect:
		return fmt.Sprintf("redirect(%d)", a.Arg), nil
	default:
		return "", fmt.Errorf("unsupported action %v", a)
	}
}
