package main

// The `ha` subcommand: scrape a live cluster's /ha endpoint and render
// the controller replica set, the current leader and fencing epoch, and
// every switch's BFD session state. The same renderer backs the
// interactive `ha` command in wire mode.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"difane"
)

// runHA is `difanectl ha`: fetch /ha from a cluster's telemetry endpoint
// and print it (raw JSON with -json).
func runHA(args []string) int {
	fs := flag.NewFlagSet("ha", flag.ExitOnError)
	addr := fs.String("addr", "", "telemetry endpoint (host:port), required")
	asJSON := fs.Bool("json", false, "print the raw /ha JSON instead of the rendered report")
	_ = fs.Parse(args)
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "ha: -addr is required (see `difanectl serve`)")
		return 2
	}
	resp, err := httpClient().Get("http://" + *addr + "/ha")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ha:", err)
		return 1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ha:", err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "ha: %s: %s\n", resp.Status, strings.TrimSpace(string(body)))
		return 1
	}
	if *asJSON {
		os.Stdout.Write(body)
		return 0
	}
	var st difane.HAStatus
	if err := json.Unmarshal(body, &st); err != nil {
		fmt.Fprintln(os.Stderr, "ha: decoding /ha response:", err)
		return 1
	}
	printHA(st)
	return 0
}

// printHA renders an HA snapshot as a human-readable report.
func printHA(st difane.HAStatus) {
	leader := "none"
	if st.Leader >= 0 {
		leader = fmt.Sprintf("replica %d", st.Leader)
	}
	fmt.Printf("leader: %s  epoch: %d  elections: %d  controller down: %v\n",
		leader, st.Epoch, st.LeaderElections, st.ControllerDown)
	if len(st.Replicas) == 0 {
		fmt.Println("replicas: none (single controller; set HAConfig.Replicas >= 2)")
	} else {
		fmt.Println("replicas:")
		for _, r := range st.Replicas {
			role := ""
			if r.Leader {
				role = "  LEADER"
			}
			state := "dead"
			if r.Alive {
				state = fmt.Sprintf("alive  journal next-seq %d", r.NextSeq)
			}
			fmt.Printf("  replica %d: %s%s\n", r.ID, state, role)
		}
	}
	if len(st.BFD) == 0 {
		fmt.Println("bfd: disabled (heartbeat detector only)")
		return
	}
	fmt.Println("bfd sessions (controller's view of each switch):")
	for _, s := range st.BFD {
		demand := ""
		if s.Demand {
			demand = "  demand"
		}
		fmt.Printf("  sw%-4d %-5s (remote %-5s discr %d)  detect %dµs  transitions %d%s\n",
			s.Switch, s.State, s.RemoteState, s.RemoteDiscr,
			s.DetectUsec, s.Transitions, demand)
	}
}
