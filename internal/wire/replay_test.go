package wire_test

import (
	"testing"
	"time"

	"difane/internal/core"
	"difane/internal/oracle"
	"difane/internal/packet"
	"difane/internal/scencheck"
	"difane/internal/telemetry"
	"difane/internal/wire"
)

// TestTraceVerdictsMatchOracle replays generated scenarios (packets only —
// no faults, no updates) through a traced wire cluster and cross-checks
// the flight recorder's terminal verdict events against the reference
// oracle: every injected packet must surface exactly one verdict event,
// and its kind, egress, and winning rule must be what the policy says.
// This pins the *event stream* itself — the differential harness already
// pins the counters — so an operator reading `difanectl trace` is reading
// the truth.
func TestTraceVerdictsMatchOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		sc := scencheck.Generate(seed, scencheck.Config{Packets: 24})
		d, err := wire.NewDeployment(wire.ClusterConfig{
			Switches:      sc.Switches,
			Authorities:   sc.Authorities,
			Policy:        sc.Policy,
			Strategy:      sc.Strategy,
			CacheCapacity: 8,
			Heartbeat: wire.HeartbeatConfig{
				Interval:      20 * time.Millisecond,
				MissThreshold: 25,
			},
			Retry: wire.RetryPolicy{
				MaxAttempts: 4,
				BaseDelay:   time.Millisecond,
				MaxDelay:    5 * time.Millisecond,
			},
			Partition: core.PartitionConfig{MaxRulesPerPartition: 4},
			Telemetry: wire.TelemetryConfig{Tracing: true},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// The flow tuple carries every field the generated policies match
		// on (IPs, ports, proto), so one expected verdict per flow hash.
		want := map[uint64]oracle.Verdict{}
		injected := map[uint64]int{}
		total, seq := 0, uint64(0)
		for _, st := range sc.Steps {
			if st.Kind != scencheck.StepPacket {
				continue
			}
			h := packet.HeaderFromKey(st.Key)
			hash := telemetry.HashFlow(h.IPSrc, h.IPDst, h.TPSrc, h.TPDst, h.IPProto)
			want[hash] = oracle.Evaluate(sc.Policy, st.Key)
			injected[hash]++
			total++
			d.InjectPacket(0, st.Ingress, st.Key, 100, seq)
			seq++
			d.Run(5.0)
		}

		// Run waits for the packet counters; the verdict event publish is
		// adjacent but not fenced to them, so allow the tail to settle.
		verdictOnly := telemetry.Filter{Kinds: []telemetry.EventKind{telemetry.EvVerdict}}
		var evs []telemetry.Event
		deadline := time.Now().Add(5 * time.Second)
		for {
			evs = d.C.TraceEvents(verdictOnly)
			if len(evs) >= total || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if len(evs) != total {
			t.Fatalf("seed %d: %d packets injected, %d verdict events recorded", seed, total, len(evs))
		}

		got := map[uint64]int{}
		for _, ev := range evs {
			w, ok := want[ev.Flow.Hash]
			if !ok {
				t.Fatalf("seed %d: verdict for unknown flow: %+v", seed, ev)
			}
			got[ev.Flow.Hash]++
			switch w.Kind {
			case oracle.Deliver:
				if ev.Verdict != telemetry.VDelivered || ev.Node != w.Egress {
					t.Errorf("seed %d: oracle says %v, trace says %s at sw%d",
						seed, w, telemetry.VerdictName(ev.Verdict), ev.Node)
				}
			case oracle.Drop:
				// Cached cover rules carry generated IDs (OriginOf maps them
				// back), so only the verdict kind and that *some* rule won
				// are stable here.
				if ev.Verdict != telemetry.VDropPolicy || ev.RuleID == 0 {
					t.Errorf("seed %d: oracle says %v, trace says %s via rule %d",
						seed, w, telemetry.VerdictName(ev.Verdict), ev.RuleID)
				}
			case oracle.Hole:
				if ev.Verdict != telemetry.VDropHole {
					t.Errorf("seed %d: oracle says %v, trace says %s",
						seed, w, telemetry.VerdictName(ev.Verdict))
				}
			}
		}
		for hash, n := range injected {
			if got[hash] != n {
				t.Errorf("seed %d: flow %x: %d packets injected, %d verdicts", seed, hash, n, got[hash])
			}
		}
		if err := d.Close(); err != nil {
			t.Fatalf("seed %d: close: %v", seed, err)
		}
	}
}
