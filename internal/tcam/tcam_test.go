package tcam

import (
	"math/rand"
	"testing"

	"difane/internal/flowspace"
)

func rule(id uint64, prio int32, port uint64) flowspace.Rule {
	m := flowspace.MatchAll()
	if port != 0 {
		m = m.WithExact(flowspace.FTPDst, port)
	}
	return flowspace.Rule{
		ID: id, Priority: prio, Match: m,
		Action: flowspace.Action{Kind: flowspace.ActForward, Arg: uint32(id)},
	}
}

func keyPort(p uint64) flowspace.Key {
	var k flowspace.Key
	k[flowspace.FTPDst] = p
	return k
}

func TestInsertLookupPriority(t *testing.T) {
	tb := New("test", 0, EvictNone)
	mustInsert(t, tb, 0, rule(1, 10, 80))
	mustInsert(t, tb, 0, rule(2, 5, 0)) // catch-all, lower priority
	got, ok := tb.Lookup(1, keyPort(80), 100)
	if !ok || got.ID != 1 {
		t.Fatalf("port-80 lookup: got %v ok=%v", got, ok)
	}
	got, ok = tb.Lookup(1, keyPort(443), 100)
	if !ok || got.ID != 2 {
		t.Fatalf("fallthrough lookup: got %v ok=%v", got, ok)
	}
	if tb.Hits.Load() != 2 || tb.Misses.Load() != 0 {
		t.Fatalf("hits=%d misses=%d", tb.Hits.Load(), tb.Misses.Load())
	}
}

func mustInsert(t *testing.T, tb *Table, now float64, r flowspace.Rule) {
	t.Helper()
	if err := tb.Insert(now, r, 0, 0); err != nil {
		t.Fatalf("insert %v: %v", r, err)
	}
}

func TestLookupMissCounts(t *testing.T) {
	tb := New("test", 0, EvictNone)
	mustInsert(t, tb, 0, rule(1, 10, 80))
	if _, ok := tb.Lookup(0, keyPort(22), 64); ok {
		t.Fatal("lookup must miss")
	}
	if tb.Misses.Load() != 1 {
		t.Fatalf("misses = %d", tb.Misses.Load())
	}
}

func TestCountersAccumulate(t *testing.T) {
	tb := New("test", 0, EvictNone)
	mustInsert(t, tb, 0, rule(1, 10, 80))
	tb.Lookup(1, keyPort(80), 100)
	tb.Lookup(2, keyPort(80), 150)
	pkts, bytes, ok := tb.Counters(1)
	if !ok || pkts != 2 || bytes != 250 {
		t.Fatalf("counters = %d/%d ok=%v", pkts, bytes, ok)
	}
	if _, _, ok := tb.Counters(99); ok {
		t.Fatal("counters for unknown rule must report !ok")
	}
}

func TestReplaceResetsCounters(t *testing.T) {
	tb := New("test", 0, EvictNone)
	mustInsert(t, tb, 0, rule(1, 10, 80))
	tb.Lookup(1, keyPort(80), 100)
	mustInsert(t, tb, 2, rule(1, 20, 80)) // same ID, re-installed
	pkts, _, _ := tb.Counters(1)
	if pkts != 0 {
		t.Fatalf("replacement must reset counters, got %d", pkts)
	}
	if tb.Len() != 1 {
		t.Fatalf("replacement must not grow the table: %d", tb.Len())
	}
}

func TestDelete(t *testing.T) {
	tb := New("test", 0, EvictNone)
	mustInsert(t, tb, 0, rule(1, 10, 80))
	if !tb.Delete(1) {
		t.Fatal("delete must report existing rule")
	}
	if tb.Delete(1) {
		t.Fatal("second delete must report missing rule")
	}
	if tb.Len() != 0 {
		t.Fatal("table must be empty after delete")
	}
}

func TestDeleteWhere(t *testing.T) {
	tb := New("test", 0, EvictNone)
	for i := uint64(1); i <= 10; i++ {
		mustInsert(t, tb, 0, rule(i, int32(i), uint64(i)))
	}
	n := tb.DeleteWhere(func(e Entry) bool { return e.Rule.ID%2 == 0 })
	if n != 5 || tb.Len() != 5 {
		t.Fatalf("removed %d, remaining %d", n, tb.Len())
	}
}

func TestCapacityEvictNone(t *testing.T) {
	tb := New("test", 2, EvictNone)
	mustInsert(t, tb, 0, rule(1, 1, 1))
	mustInsert(t, tb, 0, rule(2, 2, 2))
	if err := tb.Insert(0, rule(3, 3, 3), 0, 0); err != ErrFull {
		t.Fatalf("insert into full EvictNone table: err=%v", err)
	}
	// Replacing an existing ID must still work at capacity.
	if err := tb.Insert(1, rule(2, 9, 2), 0, 0); err != nil {
		t.Fatalf("replace at capacity: %v", err)
	}
}

func TestCapacityEvictLRU(t *testing.T) {
	tb := New("test", 2, EvictLRU)
	mustInsert(t, tb, 0, rule(1, 1, 1))
	mustInsert(t, tb, 1, rule(2, 2, 2))
	tb.Lookup(5, keyPort(1), 64) // rule 1 recently used
	mustInsert(t, tb, 6, rule(3, 3, 3))
	if _, _, ok := tb.Counters(2); ok {
		t.Fatal("LRU must evict rule 2 (least recently hit)")
	}
	if _, _, ok := tb.Counters(1); !ok {
		t.Fatal("rule 1 must survive")
	}
	if tb.Evictions.Load() != 1 {
		t.Fatalf("evictions = %d", tb.Evictions.Load())
	}
}

func TestCapacityEvictLFU(t *testing.T) {
	tb := New("test", 2, EvictLFU)
	mustInsert(t, tb, 0, rule(1, 1, 1))
	mustInsert(t, tb, 0, rule(2, 2, 2))
	tb.Lookup(1, keyPort(2), 64)
	tb.Lookup(2, keyPort(2), 64)
	tb.Lookup(3, keyPort(1), 64)
	mustInsert(t, tb, 4, rule(3, 3, 3))
	if _, _, ok := tb.Counters(1); ok {
		t.Fatal("LFU must evict rule 1 (fewest packets)")
	}
}

func TestIdleTimeout(t *testing.T) {
	tb := New("test", 0, EvictNone)
	var expired []uint64
	tb.OnExpire = func(e Entry) { expired = append(expired, e.Rule.ID) }
	if err := tb.Insert(0, rule(1, 1, 80), 10, 0); err != nil {
		t.Fatal(err)
	}
	tb.Lookup(5, keyPort(80), 64) // refresh idle clock
	tb.Advance(14)
	if tb.Len() != 1 {
		t.Fatal("entry must survive while idle < timeout")
	}
	tb.Advance(15.1)
	if tb.Len() != 0 || len(expired) != 1 || expired[0] != 1 {
		t.Fatalf("entry must idle-expire at lastHit+idle: len=%d expired=%v", tb.Len(), expired)
	}
}

func TestHardTimeout(t *testing.T) {
	tb := New("test", 0, EvictNone)
	if err := tb.Insert(0, rule(1, 1, 80), 0, 10); err != nil {
		t.Fatal(err)
	}
	// Constant traffic must not save it from the hard timeout.
	for now := 1.0; now < 10; now++ {
		tb.Lookup(now, keyPort(80), 64)
	}
	tb.Advance(10.5)
	if tb.Len() != 0 {
		t.Fatal("entry must hard-expire despite traffic")
	}
}

func TestNextExpiry(t *testing.T) {
	tb := New("test", 0, EvictNone)
	if _, ok := tb.NextExpiry(); ok {
		t.Fatal("empty table has no expiry")
	}
	tb.Insert(0, rule(1, 1, 1), 0, 0)
	if _, ok := tb.NextExpiry(); ok {
		t.Fatal("entry without timeouts has no expiry")
	}
	tb.Insert(0, rule(2, 2, 2), 0, 7)
	tb.Insert(0, rule(3, 3, 3), 3, 0)
	at, ok := tb.NextExpiry()
	if !ok || at != 3 {
		t.Fatalf("next expiry = %v ok=%v, want 3", at, ok)
	}
}

func TestPeekDoesNotTouchCounters(t *testing.T) {
	tb := New("test", 0, EvictNone)
	mustInsert(t, tb, 0, rule(1, 1, 80))
	if _, ok := tb.Peek(keyPort(80)); !ok {
		t.Fatal("peek must find the rule")
	}
	pkts, _, _ := tb.Counters(1)
	if pkts != 0 || tb.Hits.Load() != 0 {
		t.Fatal("peek must not update counters")
	}
}

// Property: table lookup always agrees with the reference evaluator over
// the installed rule set.
func TestLookupAgreesWithEvalTable(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tb := New("prop", 0, EvictNone)
	var rules []flowspace.Rule
	for i := 0; i < 60; i++ {
		m := flowspace.MatchAll().
			WithPrefix(flowspace.FIPSrc, rng.Uint64(), uint(rng.Intn(9))).
			WithPrefix(flowspace.FIPDst, rng.Uint64(), uint(rng.Intn(9)))
		r := flowspace.Rule{
			ID: uint64(i + 1), Priority: int32(rng.Intn(8)),
			Match:  m,
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: uint32(i)},
		}
		rules = append(rules, r)
		mustInsert(t, tb, 0, r)
	}
	for i := 0; i < 3000; i++ {
		var k flowspace.Key
		k[flowspace.FIPSrc] = rng.Uint64() & 0xFFFFFFFF
		k[flowspace.FIPDst] = rng.Uint64() & 0xFFFFFFFF
		want, wantOK := flowspace.EvalTable(rules, k)
		got, gotOK := tb.Peek(k)
		if wantOK != gotOK || (gotOK && got.ID != want.ID) {
			t.Fatalf("lookup mismatch for %v: got %v/%v want %v/%v", k, got, gotOK, want, wantOK)
		}
	}
}

func TestEntriesAndRulesSnapshotsInTCAMOrder(t *testing.T) {
	tb := New("test", 0, EvictNone)
	mustInsert(t, tb, 0, rule(1, 5, 1))
	mustInsert(t, tb, 0, rule(2, 50, 2))
	mustInsert(t, tb, 0, rule(3, 20, 3))
	rs := tb.Rules()
	if rs[0].ID != 2 || rs[1].ID != 3 || rs[2].ID != 1 {
		t.Fatalf("rules not in TCAM order: %v", rs)
	}
	es := tb.Entries()
	if len(es) != 3 || es[0].Rule.ID != 2 {
		t.Fatalf("entries snapshot wrong: %v", es)
	}
	if tb.String() == "" {
		t.Fatal("String must render")
	}
}
