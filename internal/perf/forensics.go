package perf

import (
	"fmt"

	"difane/internal/telemetry"
	"difane/internal/wire"
)

// JourneyArtifactReport is what the forensics smoke uploads when its gate
// fails: the assembled journeys of one sampled cache-hit run, so the
// regression can be debugged from the CI artifact alone.
type JourneyArtifactReport struct {
	Seed     int64                   `json:"seed"`
	SampleN  int                     `json:"sample_n"`
	Stats    telemetry.JourneyStats  `json:"stats"`
	Journeys []telemetry.JourneyJSON `json:"journeys"`
}

// JourneyArtifact replays the cache-hit trace through a fresh wire
// deployment with 1-in-n trace sampling and returns the journeys it
// assembled. One deterministic run — no repetitions — because the
// artifact documents behaviour, not performance.
func JourneyArtifact(c Config, sampleN int) (*JourneyArtifactReport, error) {
	c.Telemetry.Tracing = true
	c.Telemetry.TraceSample = sampleN
	if c.Telemetry.TraceBuffer == 0 {
		c.Telemetry.TraceBuffer = 1 << 16
	}
	inst, err := c.build(BackendWire)
	if err != nil {
		return nil, fmt.Errorf("perf: journey artifact: %w", err)
	}
	defer inst.d.Close()
	injectFlows(inst.d, c.flows(WorkloadCacheHit), c.Horizon)
	inst.d.Run(c.Horizon)

	d, ok := inst.d.(*wire.Deployment)
	if !ok {
		return nil, fmt.Errorf("perf: journey artifact: wire backend expected")
	}
	js, stats := d.C.Journeys(telemetry.JourneyFilter{})
	rep := &JourneyArtifactReport{Seed: c.Seed, SampleN: sampleN, Stats: stats}
	rep.Journeys = make([]telemetry.JourneyJSON, len(js))
	for i := range js {
		rep.Journeys[i] = js[i].JSON()
	}
	return rep, nil
}
