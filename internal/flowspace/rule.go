package flowspace

import (
	"fmt"
	"sort"
)

// ActionKind enumerates what a rule does with a matching packet.
type ActionKind uint8

const (
	// ActDrop discards the packet.
	ActDrop ActionKind = iota
	// ActForward sends the packet toward the egress switch in Arg.
	ActForward
	// ActRedirect encapsulates the packet toward the authority switch in
	// Arg (the action carried by DIFANE partition rules).
	ActRedirect
	// ActController punts the packet to the central controller (the
	// Ethane/NOX baseline's miss action).
	ActController
	// ActCount counts the packet and continues (monitoring rules).
	ActCount
)

var actionNames = map[ActionKind]string{
	ActDrop:       "drop",
	ActForward:    "forward",
	ActRedirect:   "redirect",
	ActController: "controller",
	ActCount:      "count",
}

func (k ActionKind) String() string {
	if s, ok := actionNames[k]; ok {
		return s
	}
	return fmt.Sprintf("action(%d)", uint8(k))
}

// Action is what a rule applies to matching packets. Arg is the egress
// switch for ActForward and the authority switch for ActRedirect.
type Action struct {
	Kind ActionKind
	Arg  uint32
}

func (a Action) String() string {
	switch a.Kind {
	case ActForward, ActRedirect:
		return fmt.Sprintf("%s(%d)", a.Kind, a.Arg)
	default:
		return a.Kind.String()
	}
}

// Rule is a prioritized ternary rule. Higher Priority wins; ties are broken
// by lower ID (insertion order), matching TCAM behaviour.
type Rule struct {
	ID       uint64
	Priority int32
	Match    Match
	Action   Action
}

func (r Rule) String() string {
	return fmt.Sprintf("#%d p=%d %s -> %s", r.ID, r.Priority, r.Match, r.Action)
}

// Before reports whether r is examined before o in a TCAM holding both.
func (r Rule) Before(o Rule) bool {
	if r.Priority != o.Priority {
		return r.Priority > o.Priority
	}
	return r.ID < o.ID
}

// SortRules orders rules highest-priority first (TCAM order), in place.
func SortRules(rs []Rule) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Before(rs[j]) })
}

// EvalTable returns the highest-priority rule in rs (any order) matching k,
// or false if none matches. It is the semantic reference against which all
// faster lookup structures are tested.
func EvalTable(rs []Rule, k Key) (Rule, bool) {
	var best Rule
	found := false
	for _, r := range rs {
		if !r.Match.Matches(k) {
			continue
		}
		if !found || r.Before(best) {
			best = r
			found = true
		}
	}
	return best, found
}

// Shadowed reports whether rule rs[i] can never match any packet because
// higher-priority rules jointly cover it. It is exact for single-rule
// covers and for covers expressible as the subtraction chain.
func Shadowed(rs []Rule, i int) bool {
	target := rs[i]
	pieces := []Match{target.Match}
	for j, r := range rs {
		if j == i || !r.Before(target) {
			continue
		}
		var next []Match
		for _, p := range pieces {
			next = append(next, p.Subtract(r.Match)...)
		}
		pieces = next
		if len(pieces) == 0 {
			return true
		}
	}
	return false
}

// DependentSet returns the rules in rs with higher match precedence than
// rs[i] whose matches overlap rs[i]'s match — the set that must accompany
// rs[i] into a cache for the cached table to stay semantically safe under
// the dependent-set strategy. Indices into rs are returned.
func DependentSet(rs []Rule, i int) []int {
	var deps []int
	for j, r := range rs {
		if j == i {
			continue
		}
		if r.Before(rs[i]) && r.Match.Overlaps(rs[i].Match) {
			deps = append(deps, j)
		}
	}
	return deps
}

// CoverFor computes a cover cache rule for the packet k that matched rule
// rs[hit] (indices into rs, which may be in any order) within the clip
// region: a match that (a) contains k, (b) lies inside clip ∩ rs[hit], and
// (c) excludes every higher-priority overlapping rule, so caching it with
// rs[hit]'s action is semantically exact. Returns false if the packet sits
// on a sliver that the subtraction could not isolate (callers then fall
// back to an exact-match cache rule).
func CoverFor(rs []Rule, hit int, clip Match, k Key) (Match, bool) {
	region, ok := rs[hit].Match.Intersect(clip)
	if !ok || !region.Matches(k) {
		return Match{}, false
	}
	pieces := []Match{region}
	for j, r := range rs {
		if j == hit || !r.Before(rs[hit]) || !r.Match.Overlaps(region) {
			continue
		}
		var next []Match
		for _, p := range pieces {
			if !p.Matches(k) {
				// Keep only the piece chain containing the packet; the
				// others can never be the returned cover.
				continue
			}
			next = append(next, p.Subtract(r.Match)...)
		}
		pieces = next
	}
	for _, p := range pieces {
		if p.Matches(k) {
			return p, true
		}
	}
	return Match{}, false
}
