package cachepolicy

import (
	"testing"

	"difane/internal/flowspace"
	"difane/internal/tcam"
	"difane/internal/telemetry"
)

// seedPolicy builds a policy with a fixed set of region observations, so
// tests exercise the scorer against known inputs.
func seedPolicy() *Policy {
	p := New(Config{})
	p.ObserveRedirect(0, 0.002)
	p.ObserveRedirect(1, 0.050) // region 1 misses are 25× costlier
	p.ObserveTraffic(0, 90, 10)
	p.ObserveTraffic(1, 50, 50)
	p.ObserveInterArrival(0, 0.1)
	p.ObserveInterArrival(1, 0.1)
	return p
}

func TestVictimDeterministicForEqualInputs(t *testing.T) {
	cands := []Candidate{
		{ID: 3, Region: 0, Packets: 5, LastHit: 9.0, Installed: 1.0},
		{ID: 1, Region: 1, Packets: 5, LastHit: 9.0, Installed: 1.0},
		{ID: 7, Region: 0, Packets: 50, LastHit: 9.9, Installed: 1.0},
	}
	now := 10.0
	p := seedPolicy()
	first := p.Victim(now, cands)
	if first < 0 {
		t.Fatalf("Victim returned -1 for unpinned candidates")
	}
	for i := 0; i < 100; i++ {
		if got := p.Victim(now, cands); got != first {
			t.Fatalf("iteration %d: Victim = %d, want %d (determinism)", i, got, first)
		}
	}
	// A freshly built policy with identical observations picks identically.
	if got := seedPolicy().Victim(now, cands); got != first {
		t.Fatalf("fresh policy: Victim = %d, want %d", got, first)
	}
}

func TestScoreMonotone(t *testing.T) {
	now := 100.0
	base := Candidate{ID: 1, Region: 0, Packets: 10, LastHit: 99.0, Installed: 10.0}
	cases := []struct {
		name   string
		seed   func() *Policy
		better Candidate // must outscore base under the seeded policy
	}{
		{"more packets", seedPolicy,
			Candidate{ID: 2, Region: 0, Packets: 20, LastHit: 99.0, Installed: 10.0}},
		{"more recent hit", seedPolicy,
			Candidate{ID: 2, Region: 0, Packets: 10, LastHit: 99.9, Installed: 10.0}},
		{"costlier region", seedPolicy,
			Candidate{ID: 2, Region: 1, Packets: 10, LastHit: 99.0, Installed: 10.0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.seed()
			lo, hi := p.Score(now, base), p.Score(now, tc.better)
			if hi <= lo {
				t.Fatalf("Score(%+v)=%g not > Score(%+v)=%g", tc.better, hi, base, lo)
			}
		})
	}

	// Region-level monotonicity: raising a region's observed redirect
	// latency raises its entries' scores.
	p := New(Config{})
	before := p.Score(now, base)
	p.ObserveRedirect(0, 1.0) // far above the 1ms default prior
	after := p.Score(now, base)
	if after <= before {
		t.Fatalf("score after latency observation %g not > before %g", after, before)
	}

	// Hit-rate monotonicity: a region that hits more often scores higher
	// than one that mostly misses, all else equal.
	p = New(Config{})
	p.ObserveRedirect(0, 0.01)
	p.ObserveRedirect(1, 0.01)
	p.ObserveTraffic(0, 99, 1)
	p.ObserveTraffic(1, 1, 99)
	hot := p.Score(now, base)
	cold := p.Score(now, Candidate{ID: 2, Region: 1, Packets: 10, LastHit: 99.0, Installed: 10.0})
	if hot <= cold {
		t.Fatalf("high-hit-rate region score %g not > low-hit-rate %g", hot, cold)
	}
}

func TestVictimNeverSelectsPinned(t *testing.T) {
	p := seedPolicy()
	now := 10.0
	cands := []Candidate{
		{ID: 1, Region: 0, Packets: 0, LastHit: 0.1, Installed: 0.1, Pinned: true}, // worst score, pinned
		{ID: 2, Region: 1, Packets: 100, LastHit: 9.9, Installed: 0.1},
		{ID: 3, Region: 0, Packets: 1, LastHit: 5.0, Installed: 0.1},
	}
	for i := 0; i < 50; i++ {
		got := p.Victim(now, cands)
		if got < 0 || cands[got].Pinned {
			t.Fatalf("Victim = %d (pinned or none); must pick an unpinned candidate", got)
		}
	}
	allPinned := []Candidate{
		{ID: 1, Pinned: true}, {ID: 2, Pinned: true},
	}
	if got := p.Victim(now, allPinned); got != -1 {
		t.Fatalf("Victim over all-pinned = %d, want -1", got)
	}
	if got := p.Victim(now, nil); got != -1 {
		t.Fatalf("Victim over empty = %d, want -1", got)
	}
}

func TestVictimTieBreaksTowardLowerID(t *testing.T) {
	p := New(Config{})
	now := 10.0
	// Identical runtime state in the same region: scores are exactly equal.
	cands := []Candidate{
		{ID: 9, Region: 0, Packets: 3, LastHit: 9.0, Installed: 1.0},
		{ID: 2, Region: 0, Packets: 3, LastHit: 9.0, Installed: 1.0},
		{ID: 5, Region: 0, Packets: 3, LastHit: 9.0, Installed: 1.0},
	}
	if got := p.Victim(now, cands); cands[got].ID != 2 {
		t.Fatalf("tie broke to ID %d, want 2", cands[got].ID)
	}
}

func TestAdaptIdle(t *testing.T) {
	p := New(Config{IdleMultiple: 8, MinIdle: 0.25, MaxIdle: 60})
	if idle, changed := p.AdaptIdle(0); idle != 0 || changed {
		t.Fatalf("AdaptIdle with no observations = (%g,%v), want (0,false)", idle, changed)
	}
	p.ObserveInterArrival(0, 0.5)
	idle, changed := p.AdaptIdle(0)
	if !changed || idle != 4.0 {
		t.Fatalf("AdaptIdle = (%g,%v), want (4,true)", idle, changed)
	}
	// Within the 5% hysteresis band: unchanged.
	if idle, changed = p.AdaptIdle(0); changed || idle != 4.0 {
		t.Fatalf("AdaptIdle repeat = (%g,%v), want (4,false)", idle, changed)
	}
	// Clamps: tiny inter-arrival hits MinIdle, huge hits MaxIdle.
	p.ObserveInterArrival(1, 1e-6)
	if idle, _ = p.AdaptIdle(1); idle != 0.25 {
		t.Fatalf("min clamp: idle = %g, want 0.25", idle)
	}
	p.ObserveInterArrival(2, 1e6)
	if idle, _ = p.AdaptIdle(2); idle != 60 {
		t.Fatalf("max clamp: idle = %g, want 60", idle)
	}
}

func exactOf(k flowspace.Key) flowspace.Match {
	m := flowspace.MatchAll()
	for f := flowspace.FieldID(0); f < flowspace.NumFields; f++ {
		m = m.WithExact(f, k[f])
	}
	return m
}

func TestPlanAggregation(t *testing.T) {
	fwd := flowspace.Action{Kind: flowspace.ActForward, Arg: 7}
	region := flowspace.MatchAll()
	rules := []flowspace.Rule{{ID: 1, Priority: 10, Match: region, Action: fwd}}
	regions := []Region{{Index: 0, Match: region, Rules: rules}}

	mkEntry := func(id uint64, k flowspace.Key, act flowspace.Action) tcam.Entry {
		return tcam.Entry{Rule: flowspace.Rule{ID: id, Priority: 10, Match: exactOf(k), Action: act}}
	}
	entries := []tcam.Entry{
		mkEntry(101, flowspace.Key{1, 2, 3, 4, 5}, fwd),
		mkEntry(102, flowspace.Key{6, 7, 8, 9, 1}, fwd),
		mkEntry(103, flowspace.Key{2, 4, 6, 8, 1}, fwd),
		// Action disagrees with the policy: must never be aggregated.
		mkEntry(104, flowspace.Key{3, 3, 3, 3, 3}, flowspace.Action{Kind: flowspace.ActDrop}),
	}

	p := New(Config{AggregateMin: 3})
	next := uint64(1 << 52)
	allocID := func() uint64 { next++; return next }
	plans := p.PlanAggregation(entries, regions, allocID)
	if len(plans) != 1 {
		t.Fatalf("got %d plans, want 1: %+v", len(plans), plans)
	}
	pl := plans[0]
	if pl.Region != 0 || len(pl.Replace) != 3 {
		t.Fatalf("plan = %+v, want region 0 replacing 3 entries", pl)
	}
	for _, id := range pl.Replace {
		if id == 104 {
			t.Fatalf("plan replaced entry 104, whose action disagrees with the policy")
		}
	}
	if pl.Cover.Action != fwd || pl.Cover.Match != region {
		t.Fatalf("cover = %+v, want the region-wide forward rule", pl.Cover)
	}
	// Below AggregateMin: no plan.
	p2 := New(Config{AggregateMin: 4})
	if plans := p2.PlanAggregation(entries, regions, allocID); len(plans) != 0 {
		t.Fatalf("AggregateMin=4 produced %d plans, want 0", len(plans))
	}
}

func TestScrapeRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.RegisterFunc("difane_delivered_total", "", telemetry.TypeCounter, func() float64 { return 900 })
	reg.RegisterFunc("difane_redirects_total", "", telemetry.TypeCounter, func() float64 { return 100 })
	reg.RegisterSummary("difane_first_packet_delay_seconds", "", func() telemetry.SummaryView {
		return telemetry.SummaryView{Count: 10, Sum: 0.5}
	})
	p := New(Config{})
	p.ScrapeRegistry(reg)
	p.mu.Lock()
	lat, hr := p.globalLatency, p.globalHitRate
	p.mu.Unlock()
	if lat != 0.05 {
		t.Fatalf("globalLatency = %g, want 0.05", lat)
	}
	if hr != 0.9 {
		t.Fatalf("globalHitRate = %g, want 0.9", hr)
	}
}
