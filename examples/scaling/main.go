// Scaling scenario: the paper's headline comparison. Sweep the offered
// new-flow rate against (a) a NOX-style reactive controller and (b) DIFANE
// with a growing pool of authority switches, then run the same policy on
// the wire-mode prototype (real goroutines + framed control channels) to
// show the architecture is not just a simulator artifact.
package main

import (
	"fmt"
	"time"

	"difane"
	"difane/internal/packet"
)

func main() {
	spec := difane.VPNNetwork(7, difane.ScaleTest)

	fmt.Println("offered new-flow load vs completed setups (1s window):")
	fmt.Println("offered/s   nox/s   difane-k1/s   difane-k4/s")
	for _, offered := range []float64{1000, 5000, 20000} {
		flows := difane.UniformTraffic(spec, difane.TrafficConfig{
			Flows: int(offered), Rate: offered, Seed: 11,
		})

		nox, err := difane.NewBaseline(spec.Graph, spec.Policy, difane.BaselineConfig{
			ControllerNode: uint32(spec.Graph.Nodes()[0]),
			ControllerRate: 2500, ControllerQueue: 1024,
		})
		if err != nil {
			panic(err)
		}
		difane.RunTrace(nox, flows, 1)

		run := func(k int) float64 {
			auths := difane.PlaceAuthorities(spec.Graph, k)
			net, err := difane.New(spec.Graph, auths, spec.Policy, difane.Config{
				Strategy:       difane.StrategyExact,
				AuthorityRate:  5000,
				AuthorityQueue: 1024,
				Replication:    k, // replicate partitions so load spreads
				Partition: difane.PartitionConfig{
					MaxRulesPerPartition: len(spec.Policy)/(2*k) + 1,
				},
			})
			if err != nil {
				panic(err)
			}
			difane.RunTrace(net, flows, 1)
			return float64(net.M.SetupsCompleted)
		}
		fmt.Printf("%8.0f  %6d   %10.0f   %10.0f\n",
			offered, nox.M.SetupsCompleted, run(1), run(4))
	}
	fmt.Println("\n(the controller saturates; DIFANE scales with authority switches)")

	// --- Wire mode ------------------------------------------------------
	policy := []difane.Rule{{
		ID: 1, Priority: 1, Match: difane.MatchAll(),
		Action: difane.Action{Kind: difane.ActForward, Arg: 3},
	}}
	cluster, err := difane.NewCluster(difane.ClusterConfig{
		Switches:    []uint32{0, 1, 2, 3},
		Authorities: []uint32{2},
		Policy:      policy,
		Strategy:    difane.StrategyCover,
	})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	const flows = 1000
	start := time.Now()
	go func() {
		for i := 0; i < flows; i++ {
			h := packet.Header{IPSrc: uint32(i + 1), TPDst: 80}
			for !cluster.Inject(0, h, 100) {
				time.Sleep(time.Microsecond)
			}
		}
	}()
	detours := 0
	for i := 0; i < flows; i++ {
		d := <-cluster.Deliveries
		if d.Detour {
			detours++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("\nwire mode: %d flows delivered in %v (%.0f flows/s), %d took the authority detour\n",
		flows, elapsed.Round(time.Millisecond),
		float64(flows)/elapsed.Seconds(), detours)
}
