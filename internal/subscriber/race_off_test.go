//go:build !race

package subscriber

const raceEnabled = false
