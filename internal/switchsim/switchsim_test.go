package switchsim

import (
	"testing"

	"difane/internal/flowspace"
	"difane/internal/proto"
	"difane/internal/tcam"
)

func mkRule(id uint64, prio int32, port uint64, kind flowspace.ActionKind) flowspace.Rule {
	m := flowspace.MatchAll()
	if port != 0 {
		m = m.WithExact(flowspace.FTPDst, port)
	}
	return flowspace.Rule{ID: id, Priority: prio, Match: m, Action: flowspace.Action{Kind: kind}}
}

func keyPort(p uint64) flowspace.Key {
	var k flowspace.Key
	k[flowspace.FTPDst] = p
	return k
}

func add(t *testing.T, s *Switch, table proto.Table, r flowspace.Rule) {
	t.Helper()
	err := s.ApplyFlowMod(0, &proto.FlowMod{Table: table, Op: proto.OpAdd, Rule: r})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPipelineOrder(t *testing.T) {
	s := New(1, Config{})
	add(t, s, proto.TablePartition, mkRule(1, 0, 0, flowspace.ActRedirect))
	add(t, s, proto.TableAuthority, mkRule(2, 0, 80, flowspace.ActForward))
	add(t, s, proto.TableCache, mkRule(3, 0, 80, flowspace.ActDrop))

	// Port 80 hits the cache first even though authority also matches.
	res := s.Classify(0, keyPort(80), 100)
	if !res.OK || res.Table != proto.TableCache || res.Rule.ID != 3 {
		t.Fatalf("res = %+v", res)
	}
	// Port 22 falls through cache and authority to the partition rule.
	res = s.Classify(0, keyPort(22), 100)
	if !res.OK || res.Table != proto.TablePartition || res.Rule.ID != 1 {
		t.Fatalf("res = %+v", res)
	}
	if s.Stats.CacheHits.Load() != 1 || s.Stats.PartitionHits.Load() != 1 {
		t.Fatalf("stats = %+v", s.Stats.Snapshot())
	}
}

func TestClassifyMiss(t *testing.T) {
	s := New(1, Config{})
	res := s.Classify(0, keyPort(80), 100)
	if res.OK {
		t.Fatal("empty switch must miss")
	}
	if s.Stats.Misses.Load() != 1 {
		t.Fatalf("stats = %+v", s.Stats.Snapshot())
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	s := New(1, Config{})
	add(t, s, proto.TableAuthority, mkRule(1, 0, 80, flowspace.ActForward))
	res := s.Peek(keyPort(80))
	if !res.OK || res.Table != proto.TableAuthority {
		t.Fatalf("res = %+v", res)
	}
	if s.Stats.AuthorityHits.Load() != 0 {
		t.Fatal("peek must not count hits")
	}
	if !s.Peek(keyPort(80)).OK {
		t.Fatal("peek must be repeatable")
	}
	if res := s.Peek(keyPort(22)); res.OK {
		t.Fatal("peek miss must report !OK")
	}
}

func TestFlowModDelete(t *testing.T) {
	s := New(1, Config{})
	add(t, s, proto.TableCache, mkRule(1, 0, 80, flowspace.ActForward))
	err := s.ApplyFlowMod(1, &proto.FlowMod{
		Table: proto.TableCache, Op: proto.OpDelete, Rule: flowspace.Rule{ID: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Peek(keyPort(80)).OK {
		t.Fatal("deleted rule must not match")
	}
}

func TestFlowModErrors(t *testing.T) {
	s := New(1, Config{})
	err := s.ApplyFlowMod(0, &proto.FlowMod{Table: proto.Table(9), Op: proto.OpAdd})
	if err == nil {
		t.Fatal("unknown table must error")
	}
	err = s.ApplyFlowMod(0, &proto.FlowMod{Table: proto.TableCache, Op: proto.FlowModOp(9)})
	if err == nil {
		t.Fatal("unknown op must error")
	}
}

func TestCacheCapacityEviction(t *testing.T) {
	s := New(1, Config{CacheCapacity: 2, CacheEviction: tcam.EvictLRU})
	add(t, s, proto.TableCache, mkRule(1, 0, 1, flowspace.ActForward))
	add(t, s, proto.TableCache, mkRule(2, 0, 2, flowspace.ActForward))
	s.Classify(1, keyPort(1), 64) // rule 1 is now more recent
	add(t, s, proto.TableCache, mkRule(3, 0, 3, flowspace.ActForward))
	if s.Table(proto.TableCache).Len() != 2 {
		t.Fatal("cache must stay at capacity")
	}
	if s.Peek(keyPort(2)).OK {
		t.Fatal("LRU victim (rule 2) must be gone")
	}
}

func TestAdvanceExpiresCaches(t *testing.T) {
	s := New(1, Config{})
	err := s.ApplyFlowMod(0, &proto.FlowMod{
		Table: proto.TableCache, Op: proto.OpAdd,
		Rule: mkRule(1, 0, 80, flowspace.ActForward), Idle: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Advance(4)
	if !s.Peek(keyPort(80)).OK {
		t.Fatal("entry must survive before timeout")
	}
	s.Advance(6)
	if s.Peek(keyPort(80)).OK {
		t.Fatal("entry must idle-expire")
	}
}

func TestCountersAcrossTables(t *testing.T) {
	s := New(1, Config{})
	add(t, s, proto.TableAuthority, mkRule(7, 0, 80, flowspace.ActForward))
	s.Classify(1, keyPort(80), 500)
	p, b, ok := s.Counters(7)
	if !ok || p != 1 || b != 500 {
		t.Fatalf("counters = %d/%d ok=%v", p, b, ok)
	}
	if _, _, ok := s.Counters(99); ok {
		t.Fatal("unknown rule must report !ok")
	}
}

func TestClearCache(t *testing.T) {
	s := New(1, Config{})
	add(t, s, proto.TableCache, mkRule(1, 0, 1, flowspace.ActForward))
	add(t, s, proto.TableCache, mkRule(2, 0, 2, flowspace.ActForward))
	add(t, s, proto.TableAuthority, mkRule(3, 0, 3, flowspace.ActForward))
	if n := s.ClearCache(); n != 2 {
		t.Fatalf("cleared %d", n)
	}
	if !s.Peek(keyPort(3)).OK {
		t.Fatal("authority table must survive a cache clear")
	}
}

func TestStringRenders(t *testing.T) {
	s := New(1, Config{})
	if s.String() == "" {
		t.Fatal("String must render")
	}
}

// TestClassifyBurstMatchesClassify cross-checks the burst cascade against
// the scalar pipeline on a mixed workload: cache hits, authority hits,
// partition hits, and misses.
func TestClassifyBurstMatchesClassify(t *testing.T) {
	mk := func() *Switch {
		s := New(1, Config{})
		add(t, s, proto.TableCache, mkRule(1, 0, 80, flowspace.ActDrop))
		add(t, s, proto.TableAuthority, mkRule(2, 0, 443, flowspace.ActForward))
		add(t, s, proto.TablePartition, mkRule(3, 0, 22, flowspace.ActRedirect))
		return s
	}
	ports := []uint64{80, 443, 22, 9999, 80, 22, 443, 9999}
	keys := make([]flowspace.Key, len(ports))
	sizes := make([]int, len(ports))
	for i, p := range ports {
		keys[i] = keyPort(p)
		sizes[i] = 100 + i
	}

	scalar := mk()
	want := make([]Result, len(ports))
	for i := range keys {
		want[i] = scalar.Classify(0, keys[i], sizes[i])
	}

	burst := mk()
	got := make([]Result, len(ports))
	burst.ClassifyBurst(0, keys, sizes, got)

	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("packet %d: scalar %+v != burst %+v", i, want[i], got[i])
		}
	}
	ss, bs := scalar.Stats.Snapshot(), burst.Stats.Snapshot()
	if ss != bs {
		t.Fatalf("stats diverge: scalar %+v burst %+v", ss, bs)
	}
}

// TestClassifyBurstDuringInstall hammers ClassifyBurst from one goroutine
// while another continuously installs and deletes cache rules. Under -race
// this exercises the snapshot handoff in tcam: every burst must see each
// install either fully applied or not at all, and results must always be
// one of the two legal outcomes (cache hit on the churning rule, or the
// stable partition fallback).
func TestClassifyBurstDuringInstall(t *testing.T) {
	s := New(1, Config{})
	add(t, s, proto.TablePartition, mkRule(1, 0, 0, flowspace.ActRedirect))

	const bursts = 2000
	stop := make(chan struct{})
	installerDone := make(chan struct{})
	go func() {
		defer close(installerDone)
		id := uint64(100)
		for {
			select {
			case <-stop:
				return
			default:
			}
			r := mkRule(id, 1, 80, flowspace.ActDrop)
			if err := s.ApplyFlowMod(0, &proto.FlowMod{Table: proto.TableCache, Op: proto.OpAdd, Rule: r}); err != nil {
				t.Error(err)
				return
			}
			err := s.ApplyFlowMod(0, &proto.FlowMod{Table: proto.TableCache, Op: proto.OpDelete, Rule: flowspace.Rule{ID: id}})
			if err != nil {
				t.Error(err)
				return
			}
			id++
		}
	}()

	keys := []flowspace.Key{keyPort(80), keyPort(80), keyPort(22)}
	sizes := []int{64, 64, 64}
	out := make([]Result, len(keys))
	for b := 0; b < bursts; b++ {
		s.ClassifyBurst(float64(b), keys, sizes, out)
		// The two port-80 packets share one cache view, so within a burst
		// they must agree on whether the churning rule was visible.
		if out[0].Table != out[1].Table {
			t.Fatalf("burst %d: split verdict within one view: %+v vs %+v", b, out[0], out[1])
		}
		for i, r := range out[:2] {
			if !r.OK {
				t.Fatalf("burst %d packet %d: port 80 must match cache or partition: %+v", b, i, r)
			}
			if r.Table == proto.TableCache && r.Rule.Action.Kind != flowspace.ActDrop {
				t.Fatalf("burst %d packet %d: torn cache rule: %+v", b, i, r)
			}
			if r.Table == proto.TablePartition && r.Rule.ID != 1 {
				t.Fatalf("burst %d packet %d: wrong fallback: %+v", b, i, r)
			}
		}
		if !out[2].OK || out[2].Table != proto.TablePartition || out[2].Rule.ID != 1 {
			t.Fatalf("burst %d: port 22 must hit the partition rule: %+v", b, out[2])
		}
	}
	close(stop)
	<-installerDone
}
