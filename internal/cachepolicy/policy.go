// Package cachepolicy makes DIFANE's ingress caching cost-aware under a
// hard TCAM budget (the FDRC direction): instead of evicting by recency
// alone, victims are scored by *predicted miss cost* — what re-redirecting
// the entry's traffic would cost, estimated from the observed redirect
// latency and hit rate of the entry's flow-space region — idle timeouts
// adapt per region to the observed packet inter-arrival times, and groups
// of near-microflow entries that share one wildcard decision are
// aggregated into a single cover entry.
//
// The policy deliberately stays off the per-packet hot path: region
// statistics are fed by the (already slow) miss path and by periodic
// scrapes of TCAM entry counters, and the victim scorer only runs when a
// full table must evict. Everything is deterministic for equal inputs —
// ties break toward the lower rule ID — so simulation runs replay
// identically and the eviction property tests can pin exact choices.
package cachepolicy

import (
	"math"
	"sync"
	"sync/atomic"
)

// Config tunes the policy; zero values take the stated defaults.
type Config struct {
	// IdleMultiple sets the adaptive idle timeout to this multiple of a
	// region's observed mean packet inter-arrival time (default 8).
	IdleMultiple float64
	// MinIdle / MaxIdle clamp the adaptive idle timeout, in seconds
	// (defaults 0.25 and 60).
	MinIdle float64
	MaxIdle float64
	// Alpha is the EWMA weight given to each new latency / inter-arrival
	// observation (default 0.25).
	Alpha float64
	// AggregateMin is the minimum number of exact-match entries sharing one
	// cover before aggregation replaces them (default 3).
	AggregateMin int
	// DefaultLatency is the redirect-latency prior used for regions with no
	// observations yet, in seconds (default 1ms).
	DefaultLatency float64
}

func (c Config) withDefaults() Config {
	if c.IdleMultiple <= 0 {
		c.IdleMultiple = 8
	}
	if c.MinIdle <= 0 {
		c.MinIdle = 0.25
	}
	if c.MaxIdle <= 0 {
		c.MaxIdle = 60
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.25
	}
	if c.AggregateMin <= 1 {
		c.AggregateMin = 3
	}
	if c.DefaultLatency <= 0 {
		c.DefaultLatency = 1e-3
	}
	return c
}

// regionStats accumulates one policy region's (= one flow-space
// partition's) observed behaviour.
type regionStats struct {
	latency float64 // EWMA redirect latency, seconds
	latOK   bool
	inter   float64 // EWMA packet inter-arrival, seconds
	interOK bool
	hits    uint64  // cache hits attributed to the region
	misses  uint64  // redirects attributed to the region
	idle    float64 // last adapted idle timeout (0 = not adapted yet)
}

// Policy is the shared cost model: one instance serves every switch of a
// deployment (region statistics are network-wide). All methods are safe
// for concurrent use.
type Policy struct {
	cfg Config

	mu      sync.Mutex
	regions map[int]*regionStats
	// globalLatency / globalHitRate are deployment-wide priors scraped from
	// the telemetry registry, used for regions with no direct observations.
	globalLatency float64
	globalHitRate float64

	costEvictions atomic.Uint64
	adaptations   atomic.Uint64
	aggregations  atomic.Uint64
	aggReplaced   atomic.Uint64
}

// New builds a policy.
func New(cfg Config) *Policy {
	return &Policy{cfg: cfg.withDefaults(), regions: make(map[int]*regionStats)}
}

// Cfg returns the policy's effective (defaulted) configuration.
func (p *Policy) Cfg() Config { return p.cfg }

func (p *Policy) region(i int) *regionStats {
	st := p.regions[i]
	if st == nil {
		st = &regionStats{}
		p.regions[i] = st
	}
	return st
}

func (p *Policy) ewma(old float64, ok bool, v float64) float64 {
	if !ok {
		return v
	}
	return old + p.cfg.Alpha*(v-old)
}

// ObserveRedirect records one observed redirect latency (seconds) for a
// region — the cost a miss in that region actually paid.
func (p *Policy) ObserveRedirect(region int, latency float64) {
	if latency <= 0 || math.IsInf(latency, 0) || math.IsNaN(latency) {
		return
	}
	p.mu.Lock()
	st := p.region(region)
	st.latency = p.ewma(st.latency, st.latOK, latency)
	st.latOK = true
	p.mu.Unlock()
}

// ObserveInterArrival records one observed mean packet inter-arrival time
// (seconds) for a region, typically derived from a cache entry's counters
// as (lastHit − installed) / (packets − 1).
func (p *Policy) ObserveInterArrival(region int, inter float64) {
	if inter <= 0 || math.IsInf(inter, 0) || math.IsNaN(inter) {
		return
	}
	p.mu.Lock()
	st := p.region(region)
	st.inter = p.ewma(st.inter, st.interOK, inter)
	st.interOK = true
	p.mu.Unlock()
}

// ObserveTraffic adds cache-hit and miss (redirect) deltas for a region;
// their ratio is the region hit rate that weights the miss cost.
func (p *Policy) ObserveTraffic(region int, hits, misses uint64) {
	p.mu.Lock()
	st := p.region(region)
	st.hits += hits
	st.misses += misses
	p.mu.Unlock()
}

// regionView returns the scoring inputs for a region under p.mu: the
// redirect latency, hit rate, and recency scale (inter-arrival), falling
// back to the scraped global priors and config defaults.
func (p *Policy) regionView(region int) (lat, hitRate, tau float64) {
	st := p.regions[region]
	lat = p.globalLatency
	if lat <= 0 {
		lat = p.cfg.DefaultLatency
	}
	hitRate = p.globalHitRate
	if hitRate <= 0 {
		hitRate = 0.5
	}
	tau = 1.0
	if st != nil {
		if st.latOK {
			lat = st.latency
		}
		if total := st.hits + st.misses; total > 0 {
			hitRate = float64(st.hits) / float64(total)
		}
		if st.interOK {
			tau = st.inter
		}
	}
	if hitRate < 0.05 {
		hitRate = 0.05 // never let a cold region zero out the cost ordering
	}
	if tau <= 0 {
		tau = 1.0
	}
	return lat, hitRate, tau
}

// Candidate is one eviction candidate: a cache entry's runtime state plus
// the flow-space region it belongs to (−1 when unknown).
type Candidate struct {
	ID        uint64
	Region    int
	Packets   uint64
	LastHit   float64
	Installed float64
	// Pinned marks an entry protected by an in-flight install; Victim never
	// selects it.
	Pinned bool
}

// Score returns the candidate's predicted miss cost: the expected extra
// latency the deployment pays if the entry is evicted now. It is the
// entry's observed packet rate (its re-reference likelihood), decayed by
// time since the last hit on the region's inter-arrival scale, priced at
// the region's observed redirect latency and weighted by the region's hit
// rate. Monotone: increasing in Packets and LastHit recency, increasing
// in the region's latency and hit rate.
func (p *Policy) Score(now float64, c Candidate) float64 {
	p.mu.Lock()
	lat, hitRate, tau := p.regionView(c.Region)
	p.mu.Unlock()
	life := now - c.Installed
	if life < tau {
		life = tau // young entries score on at most one inter-arrival of history
	}
	rate := (float64(c.Packets) + 1) / life // +1: an entry was installed for a reason
	idle := now - c.LastHit
	if idle < 0 {
		idle = 0
	}
	return lat * hitRate * rate / (1 + idle/tau)
}

// Victim picks the index of the candidate with the lowest predicted miss
// cost, skipping pinned entries; ties break toward the lower rule ID, so
// equal inputs always produce the same choice. Returns −1 when every
// candidate is pinned (or cands is empty).
func (p *Policy) Victim(now float64, cands []Candidate) int {
	best := -1
	var bestScore float64
	for i, c := range cands {
		if c.Pinned {
			continue
		}
		s := p.Score(now, c)
		if best < 0 || s < bestScore || (s == bestScore && c.ID < cands[best].ID) {
			best, bestScore = i, s
		}
	}
	if best >= 0 {
		p.costEvictions.Add(1)
	}
	return best
}

// AdaptIdle recomputes a region's idle timeout from its observed
// inter-arrival EWMA — IdleMultiple × inter-arrival, clamped to
// [MinIdle, MaxIdle] — and returns it along with whether it changed
// materially (>5%) since the last adaptation. Regions with no
// inter-arrival observations return (0, false): keep the configured
// static timeout.
func (p *Policy) AdaptIdle(region int) (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.regions[region]
	if st == nil || !st.interOK {
		return 0, false
	}
	idle := p.cfg.IdleMultiple * st.inter
	if idle < p.cfg.MinIdle {
		idle = p.cfg.MinIdle
	}
	if idle > p.cfg.MaxIdle {
		idle = p.cfg.MaxIdle
	}
	prev := st.idle
	if prev > 0 && math.Abs(idle-prev) <= 0.05*prev {
		return prev, false
	}
	st.idle = idle
	p.adaptations.Add(1)
	return idle, true
}

// IdleTimeout returns a region's last adapted idle timeout (0 = never
// adapted; callers keep their configured default).
func (p *Policy) IdleTimeout(region int) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st := p.regions[region]; st != nil {
		return st.idle
	}
	return 0
}

// Regions returns the region indices with any recorded state, sorted.
func (p *Policy) Regions() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, 0, len(p.regions))
	for i := range p.regions {
		out = append(out, i)
	}
	sortInts(out)
	return out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// CostEvictions returns how many victims the cost scorer has picked.
func (p *Policy) CostEvictions() uint64 { return p.costEvictions.Load() }

// Adaptations returns how many material idle-timeout changes AdaptIdle
// has produced.
func (p *Policy) Adaptations() uint64 { return p.adaptations.Load() }

// Aggregations returns (cover rules installed, microflow entries they
// replaced) by the aggregation planner.
func (p *Policy) Aggregations() (covers, replaced uint64) {
	return p.aggregations.Load(), p.aggReplaced.Load()
}
