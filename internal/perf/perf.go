// Package perf is the reproducible data-plane benchmark harness behind
// `difane-bench -wire`: fixed-seed workloads (cache-hit, miss-storm,
// failover-during-load) driven through the uniform Deployment surface
// against the simulator, the reactive baseline, and wire mode (both the
// in-process channel fabric and the batched TCP fabric). Every run emits a
// machine-readable Report (BENCH_wire.json) — throughput, first-packet
// latency percentiles, allocations per packet, goroutine count — that
// Compare diffs against a checked-in baseline with a regression gate.
package perf

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"difane/internal/baseline"
	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/topo"
	"difane/internal/wire"
	"difane/internal/workload"
)

// Deployment mirrors the root package's driving surface; every backend the
// harness benches satisfies it.
type Deployment interface {
	InjectPacket(at float64, ingress uint32, k flowspace.Key, size int, seq uint64)
	InjectBatch(batch []core.PacketIn)
	Run(horizon float64)
	Measurements() *core.Measurements
	Close() error
}

// Backend names.
const (
	BackendSim      = "sim"      // discrete-event simulator (virtual time)
	BackendBaseline = "baseline" // Ethane/NOX-style reactive baseline
	BackendWire     = "wire"     // wire mode, in-process channel fabric
	BackendWireTCP  = "wire-tcp" // wire mode, batched loopback-TCP fabric
)

// Workload names.
const (
	WorkloadCacheHit  = "cache-hit"  // Zipf-skewed trace: mostly cached
	WorkloadMissStorm = "miss-storm" // all-new flows: every packet a miss
	WorkloadFailover  = "failover"   // steady load, primary authority dies
)

// Config fixes a benchmark run. All randomness derives from Seed, so two
// runs of the same Config replay identical traces.
type Config struct {
	Seed     int64
	Switches int
	Rules    int
	Flows    int
	// Horizon bounds each run: virtual seconds for the simulated backends,
	// a real-time drain budget for wire mode.
	Horizon float64
	// Reps runs each (workload, backend) cell this many times on fresh
	// deployments and keeps the best-throughput repetition — short cells
	// are far too noisy for a regression gate otherwise.
	Reps      int
	Backends  []string
	Workloads []string
	Quick     bool
	// Telemetry is passed to the wire backends unchanged — the
	// telemetry-overhead smoke runs the same cell with tracing off and on
	// to price the flight recorder.
	Telemetry wire.TelemetryConfig
}

// Quick is the CI-sized configuration (the committed baseline's shape).
func Quick() Config {
	return Config{
		Seed: 42, Switches: 8, Rules: 64, Flows: 4000, Horizon: 30, Reps: 5,
		Backends:  AllBackends(),
		Workloads: AllWorkloads(),
		Quick:     true,
	}
}

// Full is the paper-scale configuration.
func Full() Config {
	c := Quick()
	c.Rules, c.Flows, c.Horizon, c.Reps, c.Quick = 256, 12000, 60, 5, false
	return c
}

// AllBackends lists every backend in canonical order.
func AllBackends() []string {
	return []string{BackendSim, BackendBaseline, BackendWire, BackendWireTCP}
}

// AllWorkloads lists every workload in canonical order.
func AllWorkloads() []string {
	return []string{WorkloadCacheHit, WorkloadMissStorm, WorkloadFailover}
}

// spec builds the deterministic shared scenario: a chain topology whose
// switches are both edges and egresses, and a ClassBench-style policy
// forwarding among them.
func (c Config) spec() *workload.Spec {
	g := topo.Linear(c.Switches, 0.0001)
	edges := make([]uint32, c.Switches)
	for i := range edges {
		edges[i] = uint32(i)
	}
	policy := workload.ClassBenchLike(workload.ACLConfig{
		Rules: c.Rules, MaxDepth: 4, PortRangeFrac: 0.1, DropFrac: 0.1,
		Egresses: edges, Seed: c.Seed,
	})
	return &workload.Spec{Name: "perf", Graph: g, Edges: edges, Policy: policy}
}

func (c Config) authorities() []uint32 {
	if c.Switches >= 4 {
		return []uint32{uint32(c.Switches / 4), uint32(3 * c.Switches / 4)}
	}
	return []uint32{0}
}

// flows derives the fixed-seed trace for one workload. Workload index is
// folded into the seed so the three traces differ but stay reproducible.
func (c Config) flows(wl string) []workload.Flow {
	spec := c.spec()
	tc := workload.TrafficConfig{
		Flows: c.Flows, Rate: float64(c.Flows) / (c.Horizon / 3),
		PacketsMean: 4, PacketGap: 0.002, Size: 400,
	}
	switch wl {
	case WorkloadMissStorm:
		// Uniform traffic is one packet per flow; triple the flow count so
		// the cell's wall time is long enough to measure.
		tc.Seed = c.Seed + 1
		tc.Flows = c.Flows * 3
		tc.Rate *= 3
		return workload.UniformTraffic(spec, tc)
	case WorkloadFailover:
		tc.Seed = c.Seed + 2
		return workload.GenerateTraffic(spec, tc)
	default:
		tc.Seed = c.Seed
		tc.ZipfAlpha = 1.4
		tc.Population = c.Flows / 4
		return workload.GenerateTraffic(spec, tc)
	}
}

// instance is one constructed backend plus its failover hook (nil when the
// backend has no authority switches to kill).
type instance struct {
	d    Deployment
	kill func()
}

func (c Config) build(backend string) (*instance, error) {
	spec := c.spec()
	auths := c.authorities()
	switch backend {
	case BackendSim:
		n, err := core.NewNetwork(spec.Graph, auths, spec.Policy, core.NetworkConfig{})
		if err != nil {
			return nil, err
		}
		return &instance{d: n, kill: func() { n.FailAuthority(auths[0]) }}, nil
	case BackendBaseline:
		n, err := baseline.NewNetwork(spec.Graph, spec.Policy, baseline.Config{})
		if err != nil {
			return nil, err
		}
		return &instance{d: n}, nil
	case BackendWire, BackendWireTCP:
		cfg := wire.ClusterConfig{
			Switches:    spec.Edges,
			Authorities: auths,
			Policy:      spec.Policy,
			Strategy:    core.StrategyCover,
			QueueDepth:  4096,
			Telemetry:   c.Telemetry,
		}
		cfg.Fabric.UseTCP = backend == BackendWireTCP
		d, err := wire.NewDeployment(cfg)
		if err != nil {
			return nil, err
		}
		return &instance{d: d, kill: func() { d.C.KillSwitch(auths[0]) }}, nil
	}
	return nil, fmt.Errorf("perf: unknown backend %q", backend)
}

// Run executes the configured workload × backend matrix and returns the
// report. Combinations a backend cannot express (failover on the
// baseline, which has no authority switches) are skipped.
func Run(c Config) (*Report, error) {
	rep := &Report{
		Version: reportVersion, Quick: c.Quick, Seed: c.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	reps := c.Reps
	if reps < 1 {
		reps = 1
	}
	for _, wl := range c.Workloads {
		flows := c.flows(wl)
		for _, backend := range c.Backends {
			var runs []Result
			skipped := false
			for r := 0; r < reps; r++ {
				inst, err := c.build(backend)
				if err != nil {
					return nil, fmt.Errorf("perf: build %s: %w", backend, err)
				}
				if wl == WorkloadFailover && inst.kill == nil {
					inst.d.Close()
					skipped = true
					break
				}
				runs = append(runs, runOne(inst, wl, backend, flows, c.Horizon))
				inst.d.Close()
			}
			if !skipped {
				rep.Results = append(rep.Results, combine(runs))
			}
		}
	}
	return rep, nil
}

// combine folds a cell's repetitions into one Result: throughput comes
// from the fastest repetition, and allocation/latency/goroutine figures
// take each metric's minimum — noise in those is one-sided (GC pauses,
// scheduler delay, and transient goroutines only inflate them). The
// observed rep-to-rep spread is recorded as the cell's noise, which
// Compare uses to widen its gate on cells this machine cannot measure
// tightly.
func combine(rs []Result) Result {
	best := rs[0]
	minP, maxP := best.PktsPerSec, best.PktsPerSec
	minA, maxA := best.AllocsPerOp, best.AllocsPerOp
	for _, r := range rs[1:] {
		if r.PktsPerSec > best.PktsPerSec {
			g, p50, p99 := best.Goroutines, best.P50FirstMs, best.P99FirstMs
			best = r
			best.Goroutines = g
			best.P50FirstMs, best.P99FirstMs = p50, p99
		}
		minP, maxP = minf(minP, r.PktsPerSec), maxf(maxP, r.PktsPerSec)
		minA, maxA = minf(minA, r.AllocsPerOp), maxf(maxA, r.AllocsPerOp)
		best.P50FirstMs = minf(best.P50FirstMs, r.P50FirstMs)
		best.P99FirstMs = minf(best.P99FirstMs, r.P99FirstMs)
		if r.Goroutines < best.Goroutines {
			best.Goroutines = r.Goroutines
		}
	}
	best.AllocsPerOp = minA
	if maxP > 0 {
		best.NoisePkts = (maxP - minP) / maxP
	}
	if minA > 0 {
		best.NoiseAllocs = (maxA - minA) / minA
	}
	return best
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// MergeBest folds two reports of the same Config cell-wise — the
// regression gate's confirm-on-failure path re-measures and merges so a
// transient CPU-contention burst can't fail the gate, while a genuine
// regression persists across every attempt. Merged noise covers both
// sides' spreads plus the drift between their bests.
func MergeBest(a, b *Report) *Report {
	out := &Report{
		Version: a.Version, Quick: a.Quick, Seed: a.Seed,
		GoMaxProcs: a.GoMaxProcs,
	}
	key := func(r Result) string { return r.Workload + "/" + r.Backend }
	merged := map[string]Result{}
	order := []string{}
	for _, r := range a.Results {
		merged[key(r)] = r
		order = append(order, key(r))
	}
	for _, r := range b.Results {
		prev, ok := merged[key(r)]
		if !ok {
			merged[key(r)] = r
			order = append(order, key(r))
			continue
		}
		drift := 0.0
		if m := maxf(prev.PktsPerSec, r.PktsPerSec); m > 0 {
			drift = (m - minf(prev.PktsPerSec, r.PktsPerSec)) / m
		}
		adrift := 0.0
		if m := minf(prev.AllocsPerOp, r.AllocsPerOp); m > 0 {
			adrift = (maxf(prev.AllocsPerOp, r.AllocsPerOp) - m) / m
		}
		c := combine([]Result{prev, r})
		c.NoisePkts = maxf(maxf(prev.NoisePkts, r.NoisePkts), drift)
		c.NoiseAllocs = maxf(maxf(prev.NoiseAllocs, r.NoiseAllocs), adrift)
		merged[key(r)] = c
	}
	for _, k := range order {
		out.Results = append(out.Results, merged[k])
	}
	sortResults(out.Results)
	return out
}

// runOne drives one backend through one trace, measuring wall time,
// allocations, and goroutine count around the inject+run window. For the
// failover workload the trace splits at its median start time: first half,
// authority death, second half — so the backend serves load across the
// transition.
func runOne(inst *instance, wl, backend string, flows []workload.Flow, horizon float64) Result {
	runtime.GC()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	injected := 0
	if wl == WorkloadFailover {
		mid := len(flows) / 2
		midT := flows[mid].Start
		injected += injectFlows(inst.d, flows[:mid], horizon)
		inst.d.Run(midT)
		inst.kill()
		injected += injectFlows(inst.d, flows[mid:], horizon)
	} else {
		injected += injectFlows(inst.d, flows, horizon)
	}
	inst.d.Run(horizon)
	wall := time.Since(start).Seconds()

	if strings.HasPrefix(backend, "wire") {
		// Wire mode's control plane (async cache-install relays) can still
		// be draining when the last packet completes; settle briefly so the
		// allocation and goroutine figures count that work consistently
		// instead of racing it.
		time.Sleep(100 * time.Millisecond)
	}
	goroutines := runtime.NumGoroutine()
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	m := inst.d.Measurements()
	res := Result{
		Workload: wl, Backend: backend,
		Packets:     injected,
		WallSeconds: wall,
		Delivered:   m.Delivered,
		Goroutines:  goroutines,
	}
	if wall > 0 {
		res.PktsPerSec = float64(injected) / wall
	}
	if injected > 0 {
		res.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(injected)
	}
	if m.FirstPacketDelay.N() > 0 {
		res.P50FirstMs = m.FirstPacketDelay.Percentile(50) * 1000
		res.P99FirstMs = m.FirstPacketDelay.Percentile(99) * 1000
	}
	res.Drops = m.Drops.Policy + m.Drops.Hole + m.Drops.AuthorityQueue +
		m.Drops.RedirectShed + m.Drops.Unreachable
	return res
}

// injectBatchSize is how many packets injectFlows accumulates before
// handing the chunk to the backend in one InjectBatch call.
const injectBatchSize = 256

func injectFlows(d Deployment, flows []workload.Flow, horizon float64) int {
	n := 0
	batch := make([]core.PacketIn, 0, injectBatchSize)
	for _, f := range flows {
		for p := 0; p < f.Packets; p++ {
			at := f.Start + float64(p)*f.Gap
			if at > horizon {
				break
			}
			batch = append(batch, core.PacketIn{
				At: at, Ingress: f.Ingress, Key: f.Key, Size: f.Size, Seq: uint64(p),
			})
			if len(batch) == cap(batch) {
				d.InjectBatch(batch)
				batch = batch[:0]
			}
			n++
		}
	}
	d.InjectBatch(batch)
	return n
}

// sortResults orders results canonically (workload, then backend) so
// reports diff cleanly.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Workload != rs[j].Workload {
			return rs[i].Workload < rs[j].Workload
		}
		return rs[i].Backend < rs[j].Backend
	})
}
