package bfd

import (
	"testing"
	"time"
)

// pump exchanges due packets between two sessions on a shared fake clock
// in steps of step for total, delivering each transmitted packet to the
// peer instantly. It returns the clock after the run.
func pump(t *testing.T, a, b *Session, start time.Time, step, total time.Duration) time.Time {
	t.Helper()
	now := start
	for el := time.Duration(0); el <= total; el += step {
		if p, _ := a.Tick(now); p != nil {
			if r := b.Handle(*p, now); r != nil {
				a.Handle(*r, now)
			}
		}
		if p, _ := b.Tick(now); p != nil {
			if r := a.Handle(*p, now); r != nil {
				b.Handle(*r, now)
			}
		}
		now = now.Add(step)
	}
	return now
}

func fixedRand() float64 { return 0.5 }

func TestHandshakeReachesUp(t *testing.T) {
	cfg := func(d uint32) Config {
		return Config{LocalDiscr: d, DesiredMinTx: 2 * time.Millisecond, Rand: fixedRand}
	}
	var aUps, bUps int
	a := New(cfg(1), func(_, st State) {
		if st == StateUp {
			aUps++
		}
	})
	b := New(cfg(2), func(_, st State) {
		if st == StateUp {
			bUps++
		}
	})
	start := time.Unix(0, 0)
	pump(t, a, b, start, 500*time.Microsecond, 10*time.Millisecond)
	if a.State() != StateUp || b.State() != StateUp {
		t.Fatalf("after pump: a=%v b=%v, want both up", a.State(), b.State())
	}
	if aUps != 1 || bUps != 1 {
		t.Fatalf("up callbacks: a=%d b=%d, want 1 each", aUps, bUps)
	}
	if !a.EverUp() || !b.EverUp() {
		t.Fatalf("EverUp should be true on both ends")
	}
	if a.Info().RemoteDiscr != 2 || b.Info().RemoteDiscr != 1 {
		t.Fatalf("discriminators not learned: a.remote=%d b.remote=%d",
			a.Info().RemoteDiscr, b.Info().RemoteDiscr)
	}
}

func TestDetectionOnSilentPeer(t *testing.T) {
	cfg := func(d uint32) Config {
		return Config{LocalDiscr: d, DesiredMinTx: 2 * time.Millisecond, DetectMult: 3, Rand: fixedRand}
	}
	var downAt []time.Duration
	start := time.Unix(0, 0)
	a := New(cfg(1), nil)
	b := New(cfg(2), nil)
	now := pump(t, a, b, start, 500*time.Microsecond, 10*time.Millisecond)
	if a.State() != StateUp {
		t.Fatalf("precondition: a not up (%v)", a.State())
	}
	// Silence b: only a ticks from here on.
	silentFrom := now
	for el := time.Duration(0); el <= 50*time.Millisecond; el += 500 * time.Microsecond {
		if _, expired := a.Tick(now); expired {
			downAt = append(downAt, now.Sub(silentFrom))
			break
		}
		now = now.Add(500 * time.Microsecond)
	}
	if len(downAt) == 0 {
		t.Fatalf("a never detected the silent peer")
	}
	dt := a.DetectTime()
	if dt != 6*time.Millisecond {
		t.Fatalf("detect time = %v, want 6ms (3 × 2ms)", dt)
	}
	// Detection must land within roughly one detect time of the silence
	// (the last rx was at most one tx interval before silentFrom).
	if downAt[0] > dt+3*time.Millisecond {
		t.Fatalf("detected after %v, want ≤ ~%v", downAt[0], dt+3*time.Millisecond)
	}
	if a.State() != StateDown {
		t.Fatalf("a state after detection = %v, want down", a.State())
	}
}

func TestDemandModePollsAndDetects(t *testing.T) {
	mk := func(d uint32) *Session {
		return New(Config{
			LocalDiscr:   d,
			DesiredMinTx: 2 * time.Millisecond,
			Demand:       true,
			PollInterval: 20 * time.Millisecond,
			Rand:         fixedRand,
		}, nil)
	}
	a, b := mk(1), mk(2)
	start := time.Unix(0, 0)
	now := pump(t, a, b, start, 500*time.Microsecond, 10*time.Millisecond)
	if a.State() != StateUp || b.State() != StateUp {
		t.Fatalf("handshake failed: a=%v b=%v", a.State(), b.State())
	}
	// Both quiescent now: no periodic packets until the poll interval
	// (the first polls land 20ms after each side went Up, so the window
	// below ends before them).
	quietUntil := now.Add(8 * time.Millisecond)
	for now.Before(quietUntil) {
		if p, _ := a.Tick(now); p != nil {
			t.Fatalf("quiescent session transmitted %+v at +%v", p, now.Sub(start))
		}
		if p, _ := b.Tick(now); p != nil {
			// b polls on its own schedule; answer it so b stays up.
			if r := a.Handle(*p, now); r != nil {
				b.Handle(*r, now)
			}
		}
		now = now.Add(500 * time.Microsecond)
	}
	// Let a's poll fire and answer it: session must stay up.
	polled := false
	for el := time.Duration(0); el <= 30*time.Millisecond; el += 500 * time.Microsecond {
		if p, _ := a.Tick(now); p != nil {
			if !p.Poll {
				t.Fatalf("expected a Poll packet, got %+v", p)
			}
			polled = true
			if r := b.Handle(*p, now); r != nil {
				if !r.Final {
					t.Fatalf("poll answered without Final: %+v", r)
				}
				a.Handle(*r, now)
			}
			break
		}
		now = now.Add(500 * time.Microsecond)
	}
	if !polled {
		t.Fatalf("a never emitted its demand-mode poll")
	}
	if a.State() != StateUp {
		t.Fatalf("a fell out of up after an answered poll: %v", a.State())
	}
	// Now kill b: a's next poll goes unanswered and the poll timeout
	// (not raw rx silence) takes the session down.
	detected := false
	for el := time.Duration(0); el <= 100*time.Millisecond; el += 500 * time.Microsecond {
		if _, expired := a.Tick(now); expired {
			detected = true
			break
		}
		now = now.Add(500 * time.Microsecond)
	}
	if !detected {
		t.Fatalf("demand-mode session never detected the dead peer")
	}
}

func TestJitterBounds(t *testing.T) {
	for _, tc := range []struct {
		name string
		mult int
		rnd  float64
		want float64 // fraction of base interval
	}{
		{"mult3-low", 3, 0.0, 0.75},
		{"mult3-high", 3, 0.999, 0.99975},
		{"mult1-high", 1, 0.999, 0.89985},
	} {
		s := New(Config{
			LocalDiscr:   1,
			DesiredMinTx: 10 * time.Millisecond,
			DetectMult:   tc.mult,
			Rand:         func() float64 { return tc.rnd },
		}, nil)
		got := s.txIntervalLocked()
		want := time.Duration(float64(10*time.Millisecond) * tc.want)
		if got != want {
			t.Errorf("%s: interval = %v, want %v", tc.name, got, want)
		}
	}
}

func TestNegotiationSlowsToPeer(t *testing.T) {
	// A fast sender must respect a slow receiver's RequiredMinRx.
	fast := New(Config{LocalDiscr: 1, DesiredMinTx: 1 * time.Millisecond, Rand: fixedRand}, nil)
	fast.Handle(Packet{
		State: StateDown, MyDiscr: 2,
		DesiredMinTx: 50 * time.Millisecond, RequiredMinRx: 50 * time.Millisecond,
		DetectMult: 3,
	}, time.Unix(0, 0))
	if iv := fast.txIntervalLocked(); iv < time.Duration(float64(50*time.Millisecond)*0.75) {
		t.Fatalf("tx interval %v ignores peer's RequiredMinRx of 50ms", iv)
	}
	// Detection must also stretch to the peer's slow DesiredMinTx.
	if dt := fast.DetectTime(); dt != 150*time.Millisecond {
		t.Fatalf("detect time = %v, want 150ms (3 × 50ms)", dt)
	}
}

func TestResetIsQuiet(t *testing.T) {
	var transitions []State
	cb := func(_, st State) { transitions = append(transitions, st) }
	a := New(Config{LocalDiscr: 1, DesiredMinTx: 2 * time.Millisecond, Rand: fixedRand}, cb)
	b := New(Config{LocalDiscr: 2, DesiredMinTx: 2 * time.Millisecond, Rand: fixedRand}, nil)
	start := time.Unix(0, 0)
	now := pump(t, a, b, start, 500*time.Microsecond, 10*time.Millisecond)
	if a.State() != StateUp {
		t.Fatalf("precondition: a not up")
	}
	n := len(transitions)
	a.Reset(now)
	if a.State() != StateDown {
		t.Fatalf("after Reset: %v, want down", a.State())
	}
	if len(transitions) != n {
		t.Fatalf("Reset fired the state callback: %v", transitions[n:])
	}
	// No detection verdict should follow from pre-reset silence...
	if _, expired := a.Tick(now.Add(time.Second)); expired {
		t.Fatalf("Tick reported detection expiry on a reset session")
	}
	// ...and the session must be able to come back up.
	b.Reset(now)
	pump(t, a, b, now, 500*time.Microsecond, 10*time.Millisecond)
	if a.State() != StateUp || b.State() != StateUp {
		t.Fatalf("sessions did not re-establish after Reset: a=%v b=%v", a.State(), b.State())
	}
}

func TestCreditDefersDetection(t *testing.T) {
	cfg := func(d uint32) Config {
		return Config{LocalDiscr: d, DesiredMinTx: 2 * time.Millisecond, DetectMult: 3, Rand: fixedRand}
	}
	a := New(cfg(1), nil)
	b := New(cfg(2), nil)
	now := pump(t, a, b, time.Unix(0, 0), 500*time.Microsecond, 10*time.Millisecond)
	if a.State() != StateUp {
		t.Fatalf("precondition: a not up")
	}
	// The driver stalls for 20ms — well past the 6ms detect time — then
	// credits the stall back before ticking. No expiry may fire.
	stall := 20 * time.Millisecond
	now = now.Add(stall)
	a.Credit(stall, now)
	if _, expired := a.Tick(now); expired {
		t.Fatalf("detection fired across a credited stall")
	}
	if a.State() != StateUp {
		t.Fatalf("credited stall took the session down: %v", a.State())
	}
	// With the peer genuinely silent and no further credits, detection
	// still converges.
	detected := false
	for el := time.Duration(0); el <= 20*time.Millisecond; el += 500 * time.Microsecond {
		now = now.Add(500 * time.Microsecond)
		if _, expired := a.Tick(now); expired {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatalf("credit permanently suppressed detection")
	}
	// Credit never moves the clock past now: an absurd credit equals a
	// fresh rx, no more.
	c := New(cfg(3), nil)
	d := New(cfg(4), nil)
	now2 := pump(t, c, d, time.Unix(0, 0), 500*time.Microsecond, 10*time.Millisecond)
	c.Credit(time.Hour, now2)
	now2 = now2.Add(7 * time.Millisecond) // one detect time past the cap
	if _, expired := c.Tick(now2); !expired {
		t.Fatalf("over-credit extended detection beyond now + detect time")
	}
}

func TestAdminDownForcesPeerDown(t *testing.T) {
	a := New(Config{LocalDiscr: 1, Rand: fixedRand}, nil)
	b := New(Config{LocalDiscr: 2, Rand: fixedRand}, nil)
	now := pump(t, a, b, time.Unix(0, 0), 500*time.Microsecond, 10*time.Millisecond)
	if a.State() != StateUp {
		t.Fatalf("precondition: a not up")
	}
	a.Handle(Packet{State: StateAdminDown, MyDiscr: 2}, now)
	if a.State() != StateDown {
		t.Fatalf("rx admin-down left a in %v, want down", a.State())
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		StateAdminDown: "admin-down",
		StateDown:      "down",
		StateInit:      "init",
		StateUp:        "up",
		State(9):       "state(9)",
	} {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", st, got, want)
		}
	}
}
