package oracle

import (
	"math/rand"
	"testing"

	"difane/internal/flowspace"
)

func rule(id uint64, prio int32, m flowspace.Match, a flowspace.Action) flowspace.Rule {
	return flowspace.Rule{ID: id, Priority: prio, Match: m, Action: a}
}

func fwd(arg uint32) flowspace.Action {
	return flowspace.Action{Kind: flowspace.ActForward, Arg: arg}
}

var drop = flowspace.Action{Kind: flowspace.ActDrop}

func TestEvaluateBasics(t *testing.T) {
	policy := []flowspace.Rule{
		rule(1, 10, flowspace.MatchAll().WithExact(flowspace.FTPDst, 80), fwd(3)),
		rule(2, 5, flowspace.MatchAll().WithPrefix(flowspace.FIPDst, 0x0A000000, 8), drop),
	}
	var k flowspace.Key
	k[flowspace.FTPDst] = 80
	if v := Evaluate(policy, k); v.Kind != Deliver || v.Egress != 3 || v.RuleID != 1 {
		t.Fatalf("http: %v", v)
	}
	k[flowspace.FTPDst] = 81
	k[flowspace.FIPDst] = 0x0A000001
	if v := Evaluate(policy, k); v.Kind != Drop || v.RuleID != 2 {
		t.Fatalf("deny: %v", v)
	}
	k[flowspace.FIPDst] = 0x0B000001
	if v := Evaluate(policy, k); v.Kind != Hole {
		t.Fatalf("uncovered key must be a hole: %v", v)
	}
	if v := Evaluate(nil, k); v.Kind != Hole {
		t.Fatalf("empty policy must be a hole: %v", v)
	}
}

func TestEvaluateTieBreaksTowardLowerID(t *testing.T) {
	policy := []flowspace.Rule{
		rule(9, 10, flowspace.MatchAll(), fwd(1)),
		rule(2, 10, flowspace.MatchAll(), fwd(2)),
	}
	if v := Evaluate(policy, flowspace.Key{}); v.RuleID != 2 || v.Egress != 2 {
		t.Fatalf("equal priority must break toward the lower ID: %v", v)
	}
}

func TestEvaluateRedirectActionIsHole(t *testing.T) {
	policy := []flowspace.Rule{
		rule(1, 10, flowspace.MatchAll(),
			flowspace.Action{Kind: flowspace.ActRedirect, Arg: 2}),
	}
	if v := Evaluate(policy, flowspace.Key{}); v.Kind != Hole || v.RuleID != 1 {
		t.Fatalf("redirect is not operator policy: %v", v)
	}
}

// The oracle deliberately re-implements priority semantics rather than
// calling flowspace.EvalTable; this property test pins the two independent
// implementations to each other over random tables and keys, so a drift in
// either is caught here instead of surfacing as a confusing differential
// failure.
func TestEvaluateAgreesWithEvalTable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var policy []flowspace.Rule
		nRules := 1 + rng.Intn(12)
		for i := 0; i < nRules; i++ {
			m := flowspace.MatchAll()
			if rng.Intn(2) == 0 {
				m = m.WithPrefix(flowspace.FIPDst, rng.Uint64(), uint(rng.Intn(33)))
			}
			if rng.Intn(3) == 0 {
				m = m.WithExact(flowspace.FTPDst, uint64(rng.Intn(4)))
			}
			act := fwd(uint32(rng.Intn(4)))
			if rng.Intn(3) == 0 {
				act = drop
			}
			policy = append(policy, rule(uint64(i+1), int32(rng.Intn(4)), m, act))
		}
		for p := 0; p < 20; p++ {
			var k flowspace.Key
			k[flowspace.FIPDst] = rng.Uint64() & 0xFFFFFFFF
			k[flowspace.FTPDst] = uint64(rng.Intn(4))
			v := Evaluate(policy, k)
			win, ok := flowspace.EvalTable(policy, k)
			if !ok {
				if v.Kind != Hole {
					t.Fatalf("EvalTable misses but oracle says %v", v)
				}
				continue
			}
			if v.RuleID != win.ID {
				t.Fatalf("winner disagrees: oracle rule %d, EvalTable rule %d (key %v)",
					v.RuleID, win.ID, k)
			}
		}
	}
}

func TestCacheRuleSound(t *testing.T) {
	parts := [][]flowspace.Rule{{
		rule(1, 10, flowspace.MatchAll().WithPrefix(flowspace.FIPDst, 0x0A000000, 24), fwd(3)),
	}}
	sound := rule(100, 10, flowspace.MatchAll().WithExact(flowspace.FIPDst, 0x0A000001), fwd(3))
	if !CacheRuleSound(sound, parts) {
		t.Fatal("subset with same action must be sound")
	}
	wrongAction := sound
	wrongAction.Action = drop
	if CacheRuleSound(wrongAction, parts) {
		t.Fatal("same region, different action must be unsound")
	}
	outside := rule(101, 10, flowspace.MatchAll().WithExact(flowspace.FIPDst, 0x0B000001), fwd(3))
	if CacheRuleSound(outside, parts) {
		t.Fatal("region outside every authority rule must be unsound")
	}
}

func TestExactKey(t *testing.T) {
	m := flowspace.MatchAll()
	for f := flowspace.FieldID(0); f < flowspace.NumFields; f++ {
		m = m.WithExact(f, 1)
	}
	k, ok := ExactKey(m)
	if !ok {
		t.Fatal("fully pinned match must yield a key")
	}
	for f := flowspace.FieldID(0); f < flowspace.NumFields; f++ {
		if k[f] != 1 {
			t.Fatalf("field %v = %d, want 1", f, k[f])
		}
	}
	if _, ok := ExactKey(flowspace.MatchAll()); ok {
		t.Fatal("wildcard match has no exact key")
	}
}
