package switchsim

import (
	"testing"

	"difane/internal/flowspace"
	"difane/internal/proto"
	"difane/internal/tcam"
)

// The TCAM-budget tests: cache capacity is derived from the budget minus
// the mandatory authority/partition footprint, continuously.

func TestBudgetDerivesCacheCapacity(t *testing.T) {
	s := New(1, Config{TCAMBudget: 4, CacheEviction: tcam.EvictLRU})
	add(t, s, proto.TablePartition, mkRule(100, 0, 0, flowspace.ActRedirect))
	// Budget 4 − 1 partition rule = 3 cache slots.
	for i := uint64(1); i <= 3; i++ {
		add(t, s, proto.TableCache, mkRule(i, 10, 79+i, flowspace.ActForward))
	}
	if n := s.Table(proto.TableCache).Len(); n != 3 {
		t.Fatalf("cache len = %d, want 3", n)
	}
	// A fourth cache insert must evict, not grow past the budget.
	add(t, s, proto.TableCache, mkRule(4, 10, 90, flowspace.ActForward))
	if n := s.Table(proto.TableCache).Len(); n != 3 {
		t.Fatalf("cache len after overflow insert = %d, want 3", n)
	}
}

func TestMandatoryInstallSqueezesCache(t *testing.T) {
	s := New(1, Config{TCAMBudget: 4, CacheEviction: tcam.EvictLRU})
	add(t, s, proto.TablePartition, mkRule(100, 0, 0, flowspace.ActRedirect))
	for i := uint64(1); i <= 3; i++ {
		add(t, s, proto.TableCache, mkRule(i, 10, 79+i, flowspace.ActForward))
	}
	// An authority-rule install claims TCAM ahead of the cache: one cache
	// entry must go.
	add(t, s, proto.TableAuthority, mkRule(200, 5, 80, flowspace.ActForward))
	if n := s.Table(proto.TableCache).Len(); n != 2 {
		t.Fatalf("cache len after authority install = %d, want 2", n)
	}
	total := s.Table(proto.TableCache).Len() +
		s.Table(proto.TableAuthority).Len() + s.Table(proto.TablePartition).Len()
	if total != 4 {
		t.Fatalf("total TCAM occupancy = %d, want budget 4", total)
	}
	// Withdrawing the authority rule hands the slot back to the cache.
	err := s.ApplyFlowMod(0, &proto.FlowMod{Table: proto.TableAuthority, Op: proto.OpDelete,
		Rule: flowspace.Rule{ID: 200}})
	if err != nil {
		t.Fatal(err)
	}
	add(t, s, proto.TableCache, mkRule(5, 10, 95, flowspace.ActForward))
	if n := s.Table(proto.TableCache).Len(); n != 3 {
		t.Fatalf("cache len after authority withdraw = %d, want 3", n)
	}
}

func TestBudgetFullyConsumedByMandatoryRules(t *testing.T) {
	s := New(1, Config{TCAMBudget: 2, CacheEviction: tcam.EvictLRU})
	add(t, s, proto.TablePartition, mkRule(100, 0, 0, flowspace.ActRedirect))
	add(t, s, proto.TableAuthority, mkRule(200, 5, 80, flowspace.ActForward))
	// No TCAM left: cache inserts must fail (capacity −1, not unlimited 0).
	mod := proto.FlowMod{Table: proto.TableCache, Op: proto.OpAdd,
		Rule: mkRule(1, 10, 81, flowspace.ActForward)}
	if err := s.ApplyFlowMod(0, &mod); err == nil {
		t.Fatal("cache insert succeeded with the budget fully consumed")
	}
}

func TestCacheCapacityStillCapsUnderLargeBudget(t *testing.T) {
	s := New(1, Config{TCAMBudget: 100, CacheCapacity: 2, CacheEviction: tcam.EvictLRU})
	for i := uint64(1); i <= 3; i++ {
		add(t, s, proto.TableCache, mkRule(i, 10, 79+i, flowspace.ActForward))
	}
	if n := s.Table(proto.TableCache).Len(); n != 2 {
		t.Fatalf("cache len = %d, want CacheCapacity cap 2", n)
	}
}
