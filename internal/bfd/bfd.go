// Package bfd implements an asynchronous-mode BFD-style session state
// machine in the spirit of RFC 5880: a three-way handshake through
// Down → Init → Up, a detect-multiplier timeout, jittered transmit
// intervals, and an optional demand mode that replaces periodic
// transmission with lazy poll sequences once a session is established.
//
// The package is transport-agnostic and clock-agnostic: a Session never
// sleeps, spawns, or sends. The driver calls Tick on its own cadence to
// learn what (if anything) to transmit and whether the detection timer
// expired, and feeds received packets to Handle. All timing flows through
// the time.Time values the caller passes in, so tests drive sessions with
// a fake clock deterministically. Wire mode carries Packet over its
// control channels as proto.BFDControl frames and runs one session per
// direction of every controller↔switch pair.
package bfd

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// State is a session's liveness state.
type State uint8

const (
	// StateAdminDown means the session was administratively taken down;
	// a peer receiving it must not treat the silence as a failure.
	StateAdminDown State = iota
	// StateDown: no (recent) contact with the peer.
	StateDown
	// StateInit: we hear the peer, the peer does not yet hear us.
	StateInit
	// StateUp: both directions confirmed — the three-way handshake closed.
	StateUp
)

func (s State) String() string {
	switch s {
	case StateAdminDown:
		return "admin-down"
	case StateDown:
		return "down"
	case StateInit:
		return "init"
	case StateUp:
		return "up"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Packet is one BFD control packet, the session's only wire artifact.
type Packet struct {
	State State
	// Poll asks the peer for an immediate Final response — demand mode's
	// liveness probe and the parameter-change handshake.
	Poll bool
	// Final answers a Poll, closing the poll sequence.
	Final bool
	// Demand advertises that the sender will go quiescent once Up.
	Demand bool
	// MyDiscr / YourDiscr are the session discriminators: MyDiscr names
	// the sender's session, YourDiscr echoes the peer's (0 until learned).
	MyDiscr   uint32
	YourDiscr uint32
	// DesiredMinTx / RequiredMinRx negotiate the transmit cadence: a
	// sender transmits no faster than the peer's RequiredMinRx.
	DesiredMinTx  time.Duration
	RequiredMinRx time.Duration
	// DetectMult is how many transmit intervals of silence the sender
	// wants its peer to tolerate before declaring the session down.
	DetectMult uint8
}

// Config parameterizes a session. Zero values take the package defaults.
type Config struct {
	// LocalDiscr is this session's discriminator (any nonzero value
	// unique among the driver's sessions).
	LocalDiscr uint32
	// DesiredMinTx is the transmit interval this end wants (default 2ms).
	DesiredMinTx time.Duration
	// RequiredMinRx is the slowest receive cadence this end will police
	// (default: DesiredMinTx).
	RequiredMinRx time.Duration
	// DetectMult is the detection multiplier: detection time is
	// DetectMult × the negotiated interval (default 3).
	DetectMult int
	// Demand stops periodic transmission once the session is Up; liveness
	// is then re-proven with a poll sequence every PollInterval.
	Demand bool
	// PollInterval is demand mode's probe cadence (default 10×DesiredMinTx).
	PollInterval time.Duration
	// Rand is the jitter source in [0,1) (default math/rand; inject a
	// constant for deterministic tests).
	Rand func() float64
}

func (c *Config) applyDefaults() {
	if c.DesiredMinTx <= 0 {
		c.DesiredMinTx = 2 * time.Millisecond
	}
	if c.RequiredMinRx <= 0 {
		c.RequiredMinRx = c.DesiredMinTx
	}
	if c.DetectMult <= 0 {
		c.DetectMult = 3
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 10 * c.DesiredMinTx
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
}

// Info is a session snapshot for status surfaces.
type Info struct {
	State       State
	RemoteState State
	RemoteDiscr uint32
	// DetectTime is the current detection timeout (negotiated).
	DetectTime time.Duration
	Demand     bool
	// Transitions counts state changes since the session was created.
	Transitions uint64
	// LastChange is when the state last changed (zero if never).
	LastChange time.Time
}

// Session is one directed BFD session. All methods are safe for
// concurrent use; the state-change callback runs without the session
// lock held.
type Session struct {
	mu  sync.Mutex
	cfg Config

	state       State
	remoteState State
	remoteDiscr uint32
	// Negotiation state learned from the peer's packets.
	remoteMinRx     time.Duration
	remoteDesiredTx time.Duration
	remoteMult      uint8
	remoteDemand    bool

	lastRx time.Time
	nextTx time.Time
	// mustTx forces one transmission on the next Tick regardless of
	// quiescence — set when a received packet advances our state, so the
	// peer learns of the transition before demand mode silences us.
	mustTx bool

	pollActive  bool
	pollStarted time.Time
	nextPoll    time.Time

	lastChange  time.Time
	transitions uint64
	everUp      bool

	onState func(old, new State)
}

// New builds a session in StateDown. onState (optional) is invoked after
// every state change, outside the session lock.
func New(cfg Config, onState func(old, new State)) *Session {
	cfg.applyDefaults()
	return &Session{cfg: cfg, state: StateDown, remoteState: StateDown, onState: onState}
}

// setState transitions the machine; callers hold s.mu and fire the
// callback after unlocking.
func (s *Session) setState(st State, now time.Time) {
	if st == s.state {
		return
	}
	s.state = st
	s.lastChange = now
	s.transitions++
	s.pollActive = false
	if st == StateUp {
		s.everUp = true
		s.nextPoll = now.Add(s.cfg.PollInterval)
	}
}

// Handle processes a received control packet. It returns a packet to send
// back immediately when the protocol demands one (a Final answering the
// peer's Poll), or nil.
func (s *Session) Handle(p Packet, now time.Time) *Packet {
	s.mu.Lock()
	old := s.state
	s.remoteState = p.State
	s.remoteDiscr = p.MyDiscr
	s.remoteMinRx = p.RequiredMinRx
	s.remoteDesiredTx = p.DesiredMinTx
	s.remoteMult = p.DetectMult
	s.remoteDemand = p.Demand
	s.lastRx = now
	if p.Final {
		s.pollActive = false
	}
	// RFC 5880 §6.8.6, trimmed to the states this package models.
	if p.State == StateAdminDown {
		if s.state != StateDown {
			s.setState(StateDown, now)
		}
	} else {
		switch s.state {
		case StateDown:
			if p.State == StateDown {
				s.setState(StateInit, now)
			} else if p.State == StateInit {
				s.setState(StateUp, now)
			}
		case StateInit:
			if p.State == StateInit || p.State == StateUp {
				s.setState(StateUp, now)
			}
		case StateUp:
			if p.State == StateDown {
				s.setState(StateDown, now)
			}
		}
	}
	var reply *Packet
	if p.Poll {
		pk := s.packetLocked()
		pk.Final = true
		reply = &pk
	} else if s.state != old {
		// Accelerate the handshake: a state-advancing packet is answered
		// on the next Tick instead of waiting out the jittered interval,
		// and the announcement goes out even if we then quiesce.
		s.mustTx = true
	}
	cb, st := s.onState, s.state
	s.mu.Unlock()
	if cb != nil && st != old {
		cb(old, st)
	}
	return reply
}

// Tick advances the session's timers: it checks the detection timeout and
// schedules transmission. It returns the packet to transmit now (nil if
// none is due) and whether this tick expired the detection timer
// (transitioning the session to Down).
func (s *Session) Tick(now time.Time) (send *Packet, expired bool) {
	s.mu.Lock()
	old := s.state
	if s.state == StateUp || s.state == StateInit {
		dt := s.detectTimeLocked()
		var timedOut bool
		if s.cfg.Demand && s.state == StateUp {
			// Local demand mode: the peer is silent by agreement, so
			// detection runs only against an outstanding poll sequence.
			timedOut = s.pollActive && now.Sub(s.pollStarted) > dt
		} else {
			timedOut = !s.lastRx.IsZero() && now.Sub(s.lastRx) > dt
		}
		if timedOut {
			s.setState(StateDown, now)
			expired = true
		}
	}
	switch {
	case s.mustTx:
		s.mustTx = false
		pk := s.packetLocked()
		pk.Poll = s.pollActive
		send = &pk
		s.nextTx = now.Add(s.txIntervalLocked())
	case s.cfg.Demand && s.state == StateUp && !s.pollActive &&
		!s.nextPoll.IsZero() && !now.Before(s.nextPoll):
		// Demand mode's lazy liveness probe.
		s.pollActive = true
		s.pollStarted = now
		pk := s.packetLocked()
		pk.Poll = true
		send = &pk
		s.nextTx = now.Add(s.txIntervalLocked())
		s.nextPoll = now.Add(s.cfg.PollInterval)
	case s.quiescentLocked() && !s.pollActive:
		// The peer asked for demand mode and both ends are Up: stay quiet.
	default:
		if s.nextTx.IsZero() || !now.Before(s.nextTx) {
			pk := s.packetLocked()
			pk.Poll = s.pollActive
			send = &pk
			s.nextTx = now.Add(s.txIntervalLocked())
		}
	}
	cb, st := s.onState, s.state
	s.mu.Unlock()
	if cb != nil && st != old {
		cb(old, st)
	}
	return send, expired
}

// Credit compensates the detection clocks for a local scheduling stall:
// the driver discovered it resumed d late, so up to d of the observed
// receive silence is attributable to the local system — which was not
// listening (or transmitting) — rather than to the peer. Both detection
// clocks advance by d, capped at now. Without this, a driver that shares
// one ticking goroutine across many sessions turns every stall longer
// than the detect time into a correlated false failure of all of them.
func (s *Session) Credit(d time.Duration, now time.Time) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	if !s.lastRx.IsZero() {
		if t := s.lastRx.Add(d); t.Before(now) {
			s.lastRx = t
		} else {
			s.lastRx = now
		}
	}
	if s.pollActive {
		if t := s.pollStarted.Add(d); t.Before(now) {
			s.pollStarted = t
		} else {
			s.pollStarted = now
		}
	}
	s.mu.Unlock()
}

// Reset quietly returns the session to Down without invoking the
// state-change callback — an administrative teardown (e.g. around a
// simulated controller outage) whose silence must not read as a detected
// failure. The next handshake re-proves the path.
func (s *Session) Reset(now time.Time) {
	s.mu.Lock()
	if s.state != StateDown {
		s.state = StateDown
		s.lastChange = now
		s.transitions++
	}
	s.remoteState = StateDown
	s.pollActive = false
	s.mustTx = false
	s.lastRx = time.Time{}
	s.nextTx = now
	s.mu.Unlock()
}

// quiescentLocked reports whether periodic transmission is suppressed:
// per RFC 5880 §6.8.7, a system stops periodic transmission when the
// REMOTE system is in demand mode and both session directions are Up.
func (s *Session) quiescentLocked() bool {
	return s.remoteDemand && s.state == StateUp && s.remoteState == StateUp
}

// detectTimeLocked is the negotiated detection timeout: the peer's
// detect-multiplier (ours until learned) times the slower of our required
// receive interval and the peer's desired transmit interval.
func (s *Session) detectTimeLocked() time.Duration {
	mult := time.Duration(s.remoteMult)
	if mult == 0 {
		mult = time.Duration(s.cfg.DetectMult)
	}
	iv := s.cfg.RequiredMinRx
	if s.remoteDesiredTx > iv {
		iv = s.remoteDesiredTx
	}
	return mult * iv
}

// txIntervalLocked is the jittered transmit interval: the negotiated base
// (no faster than the peer's RequiredMinRx) scaled into [75%,100%) — or
// [75%,90%) when DetectMult is 1 — per RFC 5880 §6.8.7.
func (s *Session) txIntervalLocked() time.Duration {
	base := s.cfg.DesiredMinTx
	if s.remoteMinRx > base {
		base = s.remoteMinRx
	}
	span := 0.25
	if s.cfg.DetectMult == 1 {
		span = 0.15
	}
	f := 0.75 + span*s.cfg.Rand()
	return time.Duration(float64(base) * f)
}

func (s *Session) packetLocked() Packet {
	return Packet{
		State:         s.state,
		Demand:        s.cfg.Demand,
		MyDiscr:       s.cfg.LocalDiscr,
		YourDiscr:     s.remoteDiscr,
		DesiredMinTx:  s.cfg.DesiredMinTx,
		RequiredMinRx: s.cfg.RequiredMinRx,
		DetectMult:    uint8(s.cfg.DetectMult),
	}
}

// State returns the current session state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Up reports whether the session is established.
func (s *Session) Up() bool { return s.State() == StateUp }

// EverUp reports whether the session has ever completed the handshake.
func (s *Session) EverUp() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.everUp
}

// DetectTime returns the current (negotiated) detection timeout.
func (s *Session) DetectTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.detectTimeLocked()
}

// Info snapshots the session for status surfaces.
func (s *Session) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Info{
		State:       s.state,
		RemoteState: s.remoteState,
		RemoteDiscr: s.remoteDiscr,
		DetectTime:  s.detectTimeLocked(),
		Demand:      s.cfg.Demand,
		Transitions: s.transitions,
		LastChange:  s.lastChange,
	}
}
