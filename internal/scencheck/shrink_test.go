package scencheck

import (
	"reflect"
	"sync"
	"testing"

	"difane/internal/flowspace"
)

// The shrinker is the debugging surface every differential failure goes
// through, so it gets its own contract tests: deterministic output, the
// output still fails, and the output is locally minimal under exactly
// the deletions Shrink itself attempts.

// shrinkFixture finds one failing scenario the way the harness does when
// a planted bug trips: deployments run with inverted priorities while
// the oracle keeps the original policy. Found once and shared — the seed
// scan replays scenarios and is the expensive part.
var shrinkFixture struct {
	once sync.Once
	sc   Scenario
	opt  Options
	ok   bool
}

func failingScenario(t *testing.T) (Scenario, Options) {
	t.Helper()
	shrinkFixture.once.Do(func() {
		invert := func(rules []flowspace.Rule) []flowspace.Rule {
			for i := range rules {
				if rules[i].Priority > 0 {
					rules[i].Priority = 6 - rules[i].Priority
				}
			}
			return rules
		}
		cfg := Config{Packets: 24, Faults: false, Updates: false}
		opt := Options{Modes: []string{ModeSim}, MutatePolicy: invert}
		for seed := int64(1); seed <= 100; seed++ {
			res := CheckSeed(seed, cfg, opt)
			if res.Failed() {
				shrinkFixture.sc, shrinkFixture.opt, shrinkFixture.ok = res.Scenario, opt, true
				return
			}
		}
	})
	if !shrinkFixture.ok {
		t.Fatal("no failing scenario in 100 seeds — cannot exercise Shrink")
	}
	return shrinkFixture.sc, shrinkFixture.opt
}

func TestShrinkDeterministic(t *testing.T) {
	sc, opt := failingScenario(t)
	a := Shrink(sc, opt)
	b := Shrink(sc, opt)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Shrink is not deterministic:\n%s\nvs\n%s", describe(a), describe(b))
	}
}

func TestShrinkOutputStillFails(t *testing.T) {
	sc, opt := failingScenario(t)
	shrunk := Shrink(sc, opt)
	if !Check(shrunk, opt).Failed() {
		t.Fatalf("shrunk scenario no longer fails the checker:\n%s", describe(shrunk))
	}
	if size(shrunk) > size(normalize(sc)) {
		t.Errorf("shrink grew the scenario: %d → %d", size(normalize(sc)), size(shrunk))
	}
}

// TestShrinkLocallyMinimal re-applies every deletion Shrink itself tries
// to the fixpoint it returned. Any single deletion that Shrink would
// have accepted — a strictly smaller normalized candidate for steps, any
// rule deletion above the one-rule floor — must now produce a passing
// scenario; otherwise Shrink stopped before its own fixed point.
func TestShrinkLocallyMinimal(t *testing.T) {
	sc, opt := failingScenario(t)
	cur := Shrink(sc, opt)

	for i := range cur.Steps {
		cand := cur
		cand.Steps = dropStep(cur.Steps, i)
		cand = normalize(cand)
		if size(cand) >= size(cur) {
			// Normalization re-grew the candidate (the dropped step was
			// load-bearing for a later step's admissibility); Shrink would
			// not have taken it, so it owes no guarantee here.
			continue
		}
		if Check(cand, opt).Failed() {
			t.Errorf("dropping step %d still fails — not locally minimal:\n%s",
				i, describe(cur))
		}
	}
	if len(cur.Policy) > 1 {
		for i := range cur.Policy {
			cand := cur
			cand.Policy = dropRule(cur.Policy, i)
			if Check(cand, opt).Failed() {
				t.Errorf("dropping base rule %d still fails — not locally minimal:\n%s",
					i, describe(cur))
			}
		}
	}
	for si := range cur.Steps {
		if cur.Steps[si].Kind != StepUpdatePolicy || len(cur.Steps[si].Policy) <= 1 {
			continue
		}
		for i := range cur.Steps[si].Policy {
			cand := cur
			cand.Steps = append([]Step(nil), cur.Steps...)
			st := cand.Steps[si]
			st.Policy = dropRule(st.Policy, i)
			cand.Steps[si] = st
			if Check(cand, opt).Failed() {
				t.Errorf("dropping update step %d rule %d still fails — not locally minimal", si, i)
			}
		}
	}
}

// TestShrinkPassingScenarioUntouched pins the guard clause: a scenario
// that does not fail comes back normalized but otherwise whole.
func TestShrinkPassingScenarioUntouched(t *testing.T) {
	sc := Generate(3, DefaultConfig())
	opt := Options{Modes: []string{ModeSim}}
	if Check(sc, opt).Failed() {
		t.Skip("seed 3 unexpectedly fails; the guard-clause test needs a passing scenario")
	}
	got := Shrink(sc, opt)
	if !reflect.DeepEqual(got, normalize(sc)) {
		t.Errorf("Shrink modified a passing scenario:\n%s\nvs\n%s",
			describe(got), describe(normalize(sc)))
	}
}
