package wire

// The burst engine: one pass of a switch's data plane over a vector of
// frames, VPP-style. A burst is split into deliveries (tunnels terminating
// here), authority work (redirects targeting here), and fresh
// classifications; the classification vector runs through one TCAM snapshot
// acquisition per table (switchsim.ClassifyBurst), authority misses are
// resolved under one node lock, and everything leaving the switch is staged
// into per-destination buckets flushed with one ring push (or one fabric
// enqueue) per destination. Measurement shards likewise take one update per
// burst: one latency-mutex acquisition for all deliveries, one completed
// bump for the batch. All scratch state lives in a per-goroutine
// burstScratch, so the steady-state cache-hit path allocates nothing.

import (
	"time"

	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/packet"
	"difane/internal/proto"
	"difane/internal/switchsim"
	"difane/internal/telemetry"
)

// burstScratch is one data goroutine's reusable burst state. Every slice is
// allocated once (capacity = the configured burst, or the switch count for
// the per-destination buckets) and resliced per burst.
type burstScratch struct {
	// frames is the pull buffer dataLoop fills from the input rings.
	frames []dataFrame

	// Classification vectors: cidx holds the frames[] indices being
	// classified, keys/sizes their lookup inputs, results the verdicts.
	cidx    []int
	keys    []flowspace.Key
	sizes   []int
	results []switchsim.Result

	// authIdx holds frames[] indices of redirects targeting this switch;
	// authRes their HandleMiss results, resolved under one node lock.
	authIdx []int
	authRes []core.MissResult

	// deliv holds frames[] indices delivered at this switch; first/later
	// collect their latencies (seconds) for one batched shard update.
	deliv []int
	first []float64
	later []float64

	// out stages outbound frames per destination slot; touched lists the
	// slots staged this burst. redirTargets is the deduplicated set of
	// authority switches redirected to, for pending-redirect bookkeeping.
	out          [][]dataFrame
	touched      []int
	redirTargets []uint32
}

func newBurstScratch(c *Cluster) *burstScratch {
	b := c.cfg.Fabric.Burst
	s := &burstScratch{
		frames:       make([]dataFrame, b),
		cidx:         make([]int, 0, b),
		keys:         make([]flowspace.Key, 0, b),
		sizes:        make([]int, 0, b),
		results:      make([]switchsim.Result, b),
		authIdx:      make([]int, 0, b),
		authRes:      make([]core.MissResult, b),
		deliv:        make([]int, 0, b),
		first:        make([]float64, 0, b),
		later:        make([]float64, 0, b),
		out:          make([][]dataFrame, len(c.nodes)),
		touched:      make([]int, 0, len(c.nodes)),
		redirTargets: make([]uint32, 0, 4),
	}
	for i := range s.out {
		s.out[i] = make([]dataFrame, 0, b)
	}
	return s
}

func (s *burstScratch) reset() {
	s.cidx = s.cidx[:0]
	s.keys = s.keys[:0]
	s.sizes = s.sizes[:0]
	s.authIdx = s.authIdx[:0]
	s.deliv = s.deliv[:0]
	s.first = s.first[:0]
	s.later = s.later[:0]
	for _, slot := range s.touched {
		s.out[slot] = s.out[slot][:0]
	}
	s.touched = s.touched[:0]
	s.redirTargets = s.redirTargets[:0]
}

// noteRedirect records a redirect target once per burst.
func (s *burstScratch) noteRedirect(t uint32) {
	for _, x := range s.redirTargets {
		if x == t {
			return
		}
	}
	s.redirTargets = append(s.redirTargets, t)
}

// processBurst runs one burst through the switch's pipeline.
func (c *Cluster) processBurst(n *node, s *burstScratch, frames []dataFrame) {
	s.reset()
	// Split: tunnels terminating here are deliveries, redirects targeting
	// here are authority work, everything else gets classified.
	for i := range frames {
		f := &frames[i]
		if f.hasEncap && f.encap.Target == n.id {
			switch f.encap.Reason {
			case packet.EncapTunnel:
				s.deliv = append(s.deliv, i)
				continue
			case packet.EncapRedirect:
				s.authIdx = append(s.authIdx, i)
				continue
			}
		}
		s.cidx = append(s.cidx, i)
		s.keys = append(s.keys, f.pkt.Header.Key())
		s.sizes = append(s.sizes, f.pkt.Size)
	}
	if len(s.cidx) > 0 {
		// One snapshot acquisition per table for the whole vector. The
		// oldest frame's inject stamp stands in for "now" — at most a
		// queueing delay stale, far inside the TCAM's seconds-granularity
		// timeout model — saving a clock read per packet.
		res := s.results[:len(s.cidx)]
		n.sw.ClassifyBurst(frameSec(&frames[s.cidx[0]]), s.keys, s.sizes, res)
		for j, i := range s.cidx {
			c.applyVerdict(n, s, &frames[i], i, &res[j])
		}
	}
	if len(s.authIdx) > 0 {
		c.authorityBurst(n, s, frames)
	}
	c.flushDeliveries(n, s, frames)
	c.flushForwards(n, s)
}

// applyVerdict acts on one classified frame: drop, stage a tunnel toward
// its egress, or stage a redirect toward its authority switch.
func (c *Cluster) applyVerdict(n *node, s *burstScratch, f *dataFrame, i int, res *switchsim.Result) {
	pkt := &f.pkt
	if !res.OK {
		c.drop(n.stats, dropHole)
		c.traceVerdict(n.id, telemetry.VDropHole, 0, &pkt.Header, 0, f.trace)
		return
	}
	switch res.Rule.Action.Kind {
	case flowspace.ActDrop:
		// Policy drop at the ingress (cached decision): intentional.
		c.policyDrop(n.stats, false)
		c.traceVerdict(n.id, telemetry.VDropPolicy, res.Rule.ID, &pkt.Header, 0, f.trace)
	case flowspace.ActForward:
		if c.tracePkt(f.trace) {
			c.rec.Publish(telemetry.Event{
				Kind: telemetry.EvForward, Node: n.id, Peer: res.Rule.Action.Arg,
				Table: uint8(res.Table), RuleID: res.Rule.ID, Flow: flowOf(&pkt.Header),
				Trace: f.trace,
			})
		}
		c.stageTunnel(n, s, res.Rule.Action.Arg, f, i)
	case flowspace.ActRedirect:
		// Miss-storm protection: an ingress over its redirect budget sheds
		// the packet here, in its own data plane, instead of piling onto
		// the authority switch's queue.
		if !n.redirectTB.Allow() {
			c.shedRedirect(n.stats)
			if c.tracePkt(f.trace) {
				c.rec.Publish(telemetry.Event{
					Kind: telemetry.EvShed, Node: n.id,
					Verdict: telemetry.VShedRedirect, Flow: flowOf(&pkt.Header),
					Trace: f.trace,
				})
			}
			return
		}
		target := res.Rule.Action.Arg
		if !c.nodeUsable(target) {
			// The failure detector marked the target dead: fail over to
			// the backup locally, in the data plane, without a controller
			// round trip.
			next, ok := c.failoverLocal(n, res.Rule, target)
			if !ok {
				c.drop(n.stats, dropUnreachable)
				c.traceVerdict(n.id, telemetry.VUnreachable, res.Rule.ID, &pkt.Header, 0, f.trace)
				return
			}
			target = next
		}
		if c.tracePkt(f.trace) {
			c.rec.Publish(telemetry.Event{
				Kind: telemetry.EvRedirect, Node: n.id, Peer: target,
				Table: uint8(res.Table), RuleID: res.Rule.ID, Flow: flowOf(&pkt.Header),
				Trace: f.trace,
			})
		}
		f.detour = true
		f.encap = packet.Encap{Reason: packet.EncapRedirect, Ingress: n.id, Target: target}
		f.hasEncap = true
		n.stats.redirects.Add(1)
		s.noteRedirect(target)
		c.stageForward(n, s, target, f)
	default:
		c.drop(n.stats, dropHole)
		c.traceVerdict(n.id, telemetry.VDropHole, res.Rule.ID, &pkt.Header, 0, f.trace)
	}
}

// authorityBurst runs the partition logic for the burst's redirected
// packets. All HandleMiss calls happen under one acquisition of the node
// lock; installs and forwarding verdicts are applied outside it.
func (c *Cluster) authorityBurst(n *node, s *burstScratch, frames []dataFrame) {
	// Processing redirected packets is the data-plane liveness signal the
	// redirect-timeout detector watches for; once per burst is enough.
	c.clearPending(n.id)
	// Keys are computed outside the lock; s.keys is free again — the
	// classification phase has fully consumed it by now.
	keys := s.keys[:0]
	for _, i := range s.authIdx {
		keys = append(keys, frames[i].pkt.Header.Key())
	}
	res := s.authRes[:len(s.authIdx)]
	n.mu.Lock()
	for j := range s.authIdx {
		res[j] = core.MissResult{}
		for _, a := range n.auths {
			if a.Partition.Region.Matches(keys[j]) {
				res[j] = a.HandleMiss(keys[j])
				break
			}
		}
	}
	n.mu.Unlock()
	for j, i := range s.authIdx {
		f := &frames[i]
		pkt := &f.pkt
		e := f.encap // decapsulate
		f.hasEncap = false
		r := &res[j]
		if !r.OK {
			c.drop(n.stats, dropHole)
			c.traceVerdict(n.id, telemetry.VDropHole, 0, &pkt.Header, 0, f.trace)
			continue
		}
		if c.tracePkt(f.trace) {
			c.rec.Publish(telemetry.Event{
				Kind: telemetry.EvAuthority, Node: n.id, Peer: e.Ingress,
				Table: uint8(proto.TableAuthority), RuleID: r.Rule.ID,
				Flow: flowOf(&pkt.Header), Trace: f.trace,
			})
		}
		if len(r.CacheMods) > 0 {
			c.queueInstall(n, e.Ingress, r.CacheMods, pkt, f.trace)
		}
		switch r.Rule.Action.Kind {
		case flowspace.ActDrop:
			// Policy drop at the authority: a completed (negative) flow setup.
			c.policyDrop(n.stats, true)
			c.traceVerdict(n.id, telemetry.VDropPolicy, r.Rule.ID, &pkt.Header, 0, f.trace)
		case flowspace.ActForward:
			c.stageTunnel(n, s, r.Rule.Action.Arg, f, i)
		default:
			c.drop(n.stats, dropHole)
			c.traceVerdict(n.id, telemetry.VDropHole, r.Rule.ID, &pkt.Header, 0, f.trace)
		}
	}
}

// queueInstall hands a cache install to the node's install writer, shedding
// (and counting) when the authority is over its install budget or the
// writer's queue is full. The packet itself still forwards, so shedding
// costs future redirects, not reachability.
func (c *Cluster) queueInstall(n *node, ingress uint32, mods []proto.FlowMod, pkt *packet.Packet, trace uint64) {
	if !n.installTB.Allow() {
		n.stats.cacheInstallsShed.Add(1)
		if c.tracePkt(trace) {
			c.rec.Publish(telemetry.Event{
				Kind: telemetry.EvShed, Node: n.id,
				Verdict: telemetry.VShedInstall, Flow: flowOf(&pkt.Header),
				Trace: trace,
			})
		}
		return
	}
	if trace != 0 && c.rec.Enabled() {
		var ruleID uint64
		if len(mods) > 0 {
			ruleID = mods[0].Rule.ID
		}
		c.rec.Publish(telemetry.Event{
			Kind: telemetry.EvInstallTriggered, Node: n.id, Peer: ingress,
			Table: uint8(proto.TableCache), RuleID: ruleID,
			Flow: flowOf(&pkt.Header), Trace: trace,
		})
	}
	install := &proto.CacheInstall{Ingress: ingress, Trace: trace, Rules: mods}
	// The authority switch writes on its switch end; the controller relay
	// reads the other end and forwards to the ingress switch. Hand the
	// write to the node's dedicated install writer instead of spawning a
	// goroutine per miss — under a storm, unbounded spawns cost more than
	// the installs; overflow degrades to a shed install.
	select {
	case n.installQ <- install:
	default:
		n.stats.cacheInstallsShed.Add(1)
		if c.tracePkt(trace) {
			c.rec.Publish(telemetry.Event{
				Kind: telemetry.EvShed, Node: n.id,
				Verdict: telemetry.VShedInstall, Flow: flowOf(&pkt.Header),
				Trace: trace,
			})
		}
	}
}

// stageTunnel encapsulates the frame toward its egress and stages it, or
// delivers it in place when this switch is the egress. n is the node doing
// the forwarding (its shard takes the accounting).
func (c *Cluster) stageTunnel(n *node, s *burstScratch, egress uint32, f *dataFrame, i int) {
	if egress == n.id {
		f.hasEncap = false
		s.deliv = append(s.deliv, i)
		return
	}
	f.encap = packet.Encap{Reason: packet.EncapTunnel, Ingress: n.id, Target: egress}
	f.hasEncap = true
	c.stageForward(n, s, egress, f)
}

// stageForward buckets the frame under its destination's slot; unknown
// destinations drop immediately. Killed destinations are handled at flush
// time, matching the direct path's per-send check.
func (c *Cluster) stageForward(src *node, s *burstScratch, to uint32, f *dataFrame) {
	dst, ok := c.switches[to]
	if !ok {
		c.drop(src.stats, dropUnreachable)
		return
	}
	if len(s.out[dst.slot]) == 0 {
		s.touched = append(s.touched, dst.slot)
	}
	s.out[dst.slot] = append(s.out[dst.slot], *f)
}

// flushDeliveries records the burst's deliveries against the node's
// measurement shard in one update: one clock read, one latency-mutex
// acquisition, one completed bump for the whole batch.
func (c *Cluster) flushDeliveries(n *node, s *burstScratch, frames []dataFrame) {
	if len(s.deliv) == 0 {
		return
	}
	now := nowNS()
	for _, i := range s.deliv {
		f := &frames[i]
		lat := time.Duration(now - f.injected)
		if f.detour {
			s.first = append(s.first, lat.Seconds())
		} else {
			s.later = append(s.later, lat.Seconds())
		}
		c.traceVerdict(n.id, telemetry.VDelivered, 0, &f.pkt.Header, int64(lat), f.trace)
		// The length pre-check keeps egress loops from serializing on the
		// shared channel's lock when nobody is draining notifications; the
		// select still sheds racy fill-ups. Either way the notification is
		// dropped, never the packet.
		if len(c.Deliveries) < cap(c.Deliveries) {
			d := Delivery{
				Egress:  n.id,
				Header:  f.pkt.Header,
				Detour:  f.detour,
				Latency: lat,
			}
			select {
			case c.Deliveries <- d:
			default:
			}
		}
	}
	n.stats.recordDeliveryBatch(s.first, s.later)
	// completed last: once Deployment.Run observes completed == injected,
	// both the Measurements counters and the Delivery notifications for
	// these packets are already visible.
	c.completed.Add(uint64(len(s.deliv)))
}

// flushForwards hands each destination its staged burst in one call: one
// ring push (or one fabric enqueue) per destination per burst. src's shard
// records drops, exactly like the old per-frame forward path.
func (c *Cluster) flushForwards(src *node, s *burstScratch) {
	// Pending-redirect markers go down before the frames do, so an
	// authority can never acknowledge a redirect we have not yet noted.
	for _, t := range s.redirTargets {
		c.notePending(t)
	}
	for _, slot := range s.touched {
		frames := s.out[slot]
		dst := c.nodes[slot]
		if dst.killed.Load() {
			// A killed switch's rings would happily accept the frames, but
			// its pump goroutine is gone: the packets would sit there
			// forever, uncounted — breaking the accounting identity
			// (injected = delivered + drops) and wedging Deployment.Run's
			// completion wait. Account them as unreachable instead, exactly
			// like the simulator's dead-egress path.
			for i := range frames {
				c.drop(src.stats, dropUnreachable)
				c.traceVerdict(src.id, telemetry.VUnreachable, 0, &frames[i].pkt.Header, 0, frames[i].trace)
			}
			continue
		}
		if c.fabric != nil {
			c.fabric.sendBurst(src, dst, frames)
			continue
		}
		ring := dst.ring(src.slot)
		pushed := ring.pushBurst(frames)
		if pushed > 0 {
			dst.noteQueueDepth(int64(ring.len()))
			dst.wake()
		}
		for i := pushed; i < len(frames); i++ {
			c.drop(src.stats, dropQueue)
			c.traceVerdict(src.id, telemetry.VDropQueue, 0, &frames[i].pkt.Header, 0, frames[i].trace)
		}
	}
}
