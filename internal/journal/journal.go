// Package journal gives the DIFANE controller a crash-safe, file-backed
// record of its state: an append-only write-ahead log of JSON records plus
// an atomically replaced snapshot. A restarted controller replays the
// snapshot and then every WAL record written after it, recovering the
// policy, partition tree, assignments, and generation/epoch counters it
// held before the crash.
//
// The format is deliberately simple and self-describing:
//
//   - wal.log — one record per line: {"seq":N,"kind":K,"data":D,"crc":C}
//     where C is the IEEE CRC32 of the kind and raw data bytes. A torn or
//     corrupt tail line (the crash case) terminates replay cleanly instead
//     of erroring: everything before it is the durable prefix.
//   - snapshot.json — {"seq":N,"state":S}, written to a temp file, fsynced,
//     and renamed into place. Writing a snapshot truncates the WAL, so the
//     journal never grows without bound.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// Record is one durable WAL entry.
type Record struct {
	Seq  uint64          `json:"seq"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
	CRC  uint32          `json:"crc"`
}

// checksum covers the kind and the raw data bytes (not the seq, which the
// reader validates by monotonicity instead).
func (r *Record) checksum() uint32 {
	h := crc32.NewIEEE()
	h.Write([]byte(r.Kind))
	h.Write(r.Data)
	return h.Sum32()
}

const (
	walName  = "wal.log"
	snapName = "snapshot.json"
	tmpName  = "snapshot.json.tmp"
)

type snapshotFile struct {
	Seq   uint64          `json:"seq"`
	State json.RawMessage `json:"state"`
}

// Journal is an open journal directory. All methods are safe for
// concurrent use.
type Journal struct {
	mu   sync.Mutex
	dir  string
	wal  *os.File
	next uint64 // seq of the next record to append
}

// Open opens (creating if needed) the journal rooted at dir and positions
// the appender after the last durable record.
func Open(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir}
	snapSeq, _, err := j.readSnapshot()
	if err != nil {
		return nil, err
	}
	recs, err := j.readWAL(snapSeq)
	if err != nil {
		return nil, err
	}
	j.next = snapSeq + 1
	if n := len(recs); n > 0 {
		j.next = recs[n-1].Seq + 1
	}
	wal, err := os.OpenFile(filepath.Join(dir, walName),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.wal = wal
	return j, nil
}

// Append durably writes one record and returns its sequence number.
func (j *Journal) Append(kind string, payload any) (uint64, error) {
	rec, err := j.AppendEntry(kind, payload)
	return rec.Seq, err
}

// AppendEntry durably writes one record and returns it sealed (seq and
// CRC assigned) — the form a replicating leader ships verbatim to its
// followers via AppendReplica.
func (j *Journal) AppendEntry(kind string, payload any) (Record, error) {
	data, err := json.Marshal(payload)
	if err != nil {
		return Record{}, fmt.Errorf("journal: marshal %s: %w", kind, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return Record{}, fmt.Errorf("journal: closed")
	}
	rec := Record{Seq: j.next, Kind: kind, Data: data}
	rec.CRC = rec.checksum()
	if err := j.writeLocked(&rec); err != nil {
		return Record{}, err
	}
	j.next = rec.Seq + 1
	return rec, nil
}

// AppendReplica durably writes a record sealed elsewhere (log shipping's
// follower side). The CRC is verified, and the follower's appender adopts
// the record's sequence so it stays aligned with the leader. Records at or
// below the durable position are ignored (idempotent re-ship); a gap
// beyond it is an error — the follower must catch up first.
func (j *Journal) AppendReplica(rec Record) error {
	if rec.CRC != rec.checksum() {
		return fmt.Errorf("journal: replica record %d: checksum mismatch", rec.Seq)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return fmt.Errorf("journal: closed")
	}
	if rec.Seq < j.next {
		return nil
	}
	if rec.Seq > j.next {
		return fmt.Errorf("journal: replica gap: have %d, got %d", j.next, rec.Seq)
	}
	if err := j.writeLocked(&rec); err != nil {
		return err
	}
	j.next = rec.Seq + 1
	return nil
}

// writeLocked serializes, writes, and fsyncs one sealed record. Caller
// holds j.mu with j.wal non-nil.
func (j *Journal) writeLocked(rec *Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.wal.Write(line); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.wal.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// RecordsAfter returns every durable WAL record with seq > after, in
// order — the catch-up feed a leader streams to a lagging follower.
// Records folded into a snapshot are no longer individually available;
// callers needing pre-snapshot state use Replay.
func (j *Journal) RecordsAfter(after uint64) ([]Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.readWAL(after)
}

// WriteSnapshot atomically replaces the snapshot with state and truncates
// the WAL: records up to now are folded into the snapshot.
func (j *Journal) WriteSnapshot(state any) error {
	data, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("journal: marshal snapshot: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return fmt.Errorf("journal: closed")
	}
	snap := snapshotFile{Seq: j.next, State: data}
	buf, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	tmp := filepath.Join(j.dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapName)); err != nil {
		return fmt.Errorf("journal: snapshot rename: %w", err)
	}
	// The snapshot now covers every appended record: restart the WAL. The
	// snapshot carries j.next as its seq, so older WAL records — had the
	// truncate been lost — would be skipped on replay anyway.
	if err := j.wal.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	wal, err := os.OpenFile(filepath.Join(j.dir, walName),
		os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		j.wal = nil
		return fmt.Errorf("journal: %w", err)
	}
	j.wal = wal
	j.next = snap.Seq + 1
	return nil
}

// Replay loads the durable state: the snapshot (if any) is unmarshalled
// into snap when snap is non-nil, then apply is called for every WAL
// record after it, in order. It returns the number of WAL records applied
// and whether a snapshot existed.
func (j *Journal) Replay(snap any, apply func(Record) error) (applied int, hadSnapshot bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	snapSeq, raw, err := j.readSnapshot()
	if err != nil {
		return 0, false, err
	}
	if raw != nil {
		hadSnapshot = true
		if snap != nil {
			if err := json.Unmarshal(raw, snap); err != nil {
				return 0, true, fmt.Errorf("journal: snapshot state: %w", err)
			}
		}
	}
	recs, err := j.readWAL(snapSeq)
	if err != nil {
		return 0, hadSnapshot, err
	}
	for _, rec := range recs {
		if apply != nil {
			if err := apply(rec); err != nil {
				return applied, hadSnapshot, err
			}
		}
		applied++
	}
	return applied, hadSnapshot, nil
}

// readSnapshot returns the snapshot's seq and raw state, or (0, nil) when
// no snapshot exists.
func (j *Journal) readSnapshot() (uint64, json.RawMessage, error) {
	buf, err := os.ReadFile(filepath.Join(j.dir, snapName))
	if os.IsNotExist(err) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, fmt.Errorf("journal: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(buf, &snap); err != nil {
		return 0, nil, fmt.Errorf("journal: corrupt snapshot: %w", err)
	}
	return snap.Seq, snap.State, nil
}

// readWAL scans the WAL, returning every valid record with seq > after. A
// torn or corrupt line ends the scan without error (crash-consistent
// prefix); a record whose seq goes backwards does too.
func (j *Journal) readWAL(after uint64) ([]Record, error) {
	f, err := os.Open(filepath.Join(j.dir, walName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	last := uint64(0)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail
		}
		if rec.CRC != rec.checksum() {
			break // corrupt tail
		}
		if rec.Seq <= last && last != 0 {
			break // sequence went backwards: stale bytes past a crash
		}
		last = rec.Seq
		if rec.Seq > after {
			out = append(out, rec)
		}
	}
	return out, nil
}

// NextSeq returns the sequence number the next Append will use.
func (j *Journal) NextSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// Close releases the WAL file handle. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return nil
	}
	err := j.wal.Close()
	j.wal = nil
	return err
}
