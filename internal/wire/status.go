package wire

import (
	"encoding/json"
	"net/http"
	"sort"

	"difane/internal/proto"
)

// SwitchStatus is one switch's state in the status report.
type SwitchStatus struct {
	ID             uint32 `json:"id"`
	CacheEntries   int    `json:"cache_entries"`
	AuthorityRules int    `json:"authority_rules"`
	PartitionRules int    `json:"partition_rules"`
	CacheHits      uint64 `json:"cache_hits"`
	AuthorityHits  uint64 `json:"authority_hits"`
	PartitionHits  uint64 `json:"partition_hits"`
	Misses         uint64 `json:"misses"`
	QueueDepth     int    `json:"queue_depth"`
	PeakQueueDepth int    `json:"peak_queue_depth"`
	OutboxLen      int    `json:"outbox_len"`
	Epoch          uint64 `json:"epoch"`
	ReportedEpoch  uint64 `json:"reported_epoch,omitempty"`
	Alive          bool   `json:"alive"`
	Killed         bool   `json:"killed"`
}

// Status is the cluster-wide state report served at /status.
type Status struct {
	Switches       []SwitchStatus `json:"switches"`
	Dropped        uint64         `json:"dropped"`
	Epoch          uint64         `json:"epoch"`
	ControllerDown bool           `json:"controller_down,omitempty"`
}

// Status snapshots the cluster's state.
func (c *Cluster) Status() Status {
	ids := make([]uint32, 0, len(c.switches))
	for id := range c.switches {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	st := Status{
		Dropped:        c.dropped.Load(),
		Epoch:          c.epoch.Load(),
		ControllerDown: c.ctrlDown.Load(),
	}
	for _, id := range ids {
		n := c.switches[id]
		stats := n.sw.Stats.Snapshot()
		ss := SwitchStatus{
			ID:             id,
			CacheEntries:   n.sw.Table(proto.TableCache).Len(),
			AuthorityRules: n.sw.Table(proto.TableAuthority).Len(),
			PartitionRules: n.sw.Table(proto.TablePartition).Len(),
			CacheHits:      stats.CacheHits,
			AuthorityHits:  stats.AuthorityHits,
			PartitionHits:  stats.PartitionHits,
			Misses:         stats.Misses,
			QueueDepth:     n.queueLen(),
			PeakQueueDepth: int(n.peakQueue.Load()),
			OutboxLen:      len(n.outbox),
			Epoch:          n.epoch.Load(),
			ReportedEpoch:  n.reportedEpoch.Load(),
			Alive:          n.alive.Load(),
			Killed:         n.killed.Load(),
		}
		st.Switches = append(st.Switches, ss)
	}
	return st
}

// StatusHandler returns an http.Handler serving the cluster status as
// JSON — mountable into any mux for operational visibility:
//
//	http.Handle("/status", cluster.StatusHandler())
func (c *Cluster) StatusHandler() http.Handler {
	return jsonHandler(func() any { return c.Status() })
}

// ReplicaStatus is one controller replica's state in the HA report.
type ReplicaStatus struct {
	ID      int    `json:"id"`
	Alive   bool   `json:"alive"`
	Leader  bool   `json:"leader"`
	NextSeq uint64 `json:"next_seq"`
}

// BFDSessionStatus is one switch's controller-side BFD session in the HA
// report.
type BFDSessionStatus struct {
	Switch      uint32 `json:"switch"`
	State       string `json:"state"`
	RemoteState string `json:"remote_state"`
	RemoteDiscr uint32 `json:"remote_discr,omitempty"`
	DetectUsec  int64  `json:"detect_usec"`
	Demand      bool   `json:"demand,omitempty"`
	Transitions uint64 `json:"transitions"`
}

// HAStatus is the failure-detection and controller-HA report served at
// /ha and rendered by difanectl ha.
type HAStatus struct {
	Leader          int                `json:"leader"`
	Epoch           uint64             `json:"epoch"`
	ControllerDown  bool               `json:"controller_down"`
	LeaderElections uint64             `json:"leader_elections"`
	Replicas        []ReplicaStatus    `json:"replicas,omitempty"`
	BFD             []BFDSessionStatus `json:"bfd,omitempty"`
}

// HAStatus snapshots the controller replica set and every switch's BFD
// session state.
func (c *Cluster) HAStatus() HAStatus {
	st := HAStatus{
		Leader:          c.Leader(),
		Epoch:           c.epoch.Load(),
		ControllerDown:  c.ctrlDown.Load(),
		LeaderElections: c.cold.leaderElections.Load(),
	}
	c.haMu.Lock()
	lid := int(c.leaderID.Load())
	for _, r := range c.replicas {
		rs := ReplicaStatus{ID: r.id, Alive: r.alive, Leader: r.id == lid}
		if r.alive && r.jrnl != nil {
			rs.NextSeq = r.jrnl.NextSeq()
		}
		st.Replicas = append(st.Replicas, rs)
	}
	c.haMu.Unlock()
	sessions := c.BFDSessions()
	ids := make([]uint32, 0, len(sessions))
	for id := range sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		info := sessions[id]
		st.BFD = append(st.BFD, BFDSessionStatus{
			Switch:      id,
			State:       info.State.String(),
			RemoteState: info.RemoteState.String(),
			RemoteDiscr: info.RemoteDiscr,
			DetectUsec:  info.DetectTime.Microseconds(),
			Demand:      info.Demand,
			Transitions: info.Transitions,
		})
	}
	return st
}

// HAHandler returns an http.Handler serving the HA status as JSON.
func (c *Cluster) HAHandler() http.Handler {
	return jsonHandler(func() any { return c.HAStatus() })
}

// jsonHandler serves one snapshot function as indented GET-only JSON.
func jsonHandler(snap func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
