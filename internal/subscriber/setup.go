package subscriber

import (
	"difane/internal/core"
	"difane/internal/topo"
	"difane/internal/wire"
	"difane/internal/workload"
)

// Setup describes the deterministic soak test-bed: a chain of edge
// switches (every one an ingress and an egress) carrying a
// ClassBench-style policy, with a subset hosting the authority rules.
// The same Setup always builds the same spec and cluster, so a soak run
// is reproducible from (Setup, SoakConfig) alone.
type Setup struct {
	// Switches is the edge switch count (default 8).
	Switches int
	// Rules is the policy size (default 96).
	Rules int
	// CacheCapacity bounds each ingress TCAM (default 0: unlimited).
	// Small values make churn phases evict visibly.
	CacheCapacity int
	// QueueDepth sizes the wire rings (default 4096).
	QueueDepth int
	// Seed drives the policy generator.
	Seed int64
	// Telemetry configures the wire cluster's ops surface (optional).
	Telemetry wire.TelemetryConfig
}

func (s Setup) withDefaults() Setup {
	if s.Switches < 2 {
		s.Switches = 8
	}
	if s.Rules <= 0 {
		s.Rules = 96
	}
	if s.QueueDepth <= 0 {
		s.QueueDepth = 4096
	}
	return s
}

// Spec builds the test-bed's workload spec.
func (s Setup) Spec() *workload.Spec {
	s = s.withDefaults()
	g := topo.Linear(s.Switches, 0.0001)
	edges := make([]uint32, s.Switches)
	for i := range edges {
		edges[i] = uint32(i)
	}
	policy := workload.ClassBenchLike(workload.ACLConfig{
		Rules: s.Rules, MaxDepth: 4, PortRangeFrac: 0.1, DropFrac: 0.1,
		Egresses: edges, Seed: s.Seed,
	})
	return &workload.Spec{
		Name: "subscriber-soak", Graph: g, Edges: edges, Policy: policy,
		Describe: "chain of BNG edges, ClassBench ACL policy",
	}
}

// authorities places two authority switches the way the perf harness
// does: quarter points of the chain.
func (s Setup) authorities() []uint32 {
	if s.Switches >= 4 {
		return []uint32{uint32(s.Switches / 4), uint32(3 * s.Switches / 4)}
	}
	return []uint32{0}
}

// Deploy builds the wire cluster for the test-bed and returns it with
// the spec it routes. The caller closes the deployment.
func (s Setup) Deploy() (*wire.Deployment, *workload.Spec, error) {
	s = s.withDefaults()
	spec := s.Spec()
	d, err := wire.NewDeployment(wire.ClusterConfig{
		Switches:      spec.Edges,
		Authorities:   s.authorities(),
		Policy:        spec.Policy,
		Strategy:      core.StrategyCover,
		CacheCapacity: s.CacheCapacity,
		QueueDepth:    s.QueueDepth,
		Telemetry:     s.Telemetry,
	})
	if err != nil {
		return nil, nil, err
	}
	return d, spec, nil
}
