package wire

import (
	"fmt"
	"runtime"
	"testing"

	"difane/internal/packet"
)

// TestFrameRingWraparound drives far more frames than the ring holds
// through a concurrent producer/consumer pair, so the cursors wrap the
// power-of-two index space many times. Every frame must arrive exactly
// once, in order, with its contents intact — and under -race the
// store/load pairing on the cursors must establish the happens-before
// edges the ring's correctness rests on.
func TestFrameRingWraparound(t *testing.T) {
	const depth = 8
	const total = 50_000
	r := newFrameRing(depth)
	if len(r.buf) != depth {
		t.Fatalf("ring depth = %d, want %d", len(r.buf), depth)
	}

	done := make(chan error, 1)
	go func() {
		out := make([]dataFrame, 3) // odd burst size forces mid-ring wraps
		next := uint64(0)
		for next < total {
			n := r.popBurst(out)
			if n == 0 {
				runtime.Gosched() // single-core CI: yield instead of spinning
				continue
			}
			for i := 0; i < n; i++ {
				f := &out[i]
				if f.injected != int64(next) {
					done <- errf("frame %d: injected = %d", next, f.injected)
					return
				}
				if f.pkt.Header.IPSrc != uint32(next) || f.pkt.Size != int(next%1500) {
					done <- errf("frame %d: header/size corrupted: %+v", next, f.pkt)
					return
				}
				if f.hasEncap != (next%2 == 0) {
					done <- errf("frame %d: hasEncap = %v", next, f.hasEncap)
					return
				}
				if f.hasEncap && f.encap.Target != uint32(next) {
					done <- errf("frame %d: encap target = %d", next, f.encap.Target)
					return
				}
				next++
			}
		}
		done <- nil
	}()

	buf := make([]dataFrame, 5)
	seq := uint64(0)
	for seq < total {
		n := 0
		for n < len(buf) && seq+uint64(n) < total {
			i := seq + uint64(n)
			buf[n] = dataFrame{
				pkt: packet.Packet{
					Header: packet.Header{IPSrc: uint32(i)},
					Size:   int(i % 1500),
				},
				injected: int64(i),
				hasEncap: i%2 == 0,
				encap:    packet.Encap{Reason: packet.EncapTunnel, Target: uint32(i)},
			}
			n++
		}
		pushed := r.pushBurst(buf[:n])
		if pushed == 0 {
			runtime.Gosched()
		}
		seq += uint64(pushed)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if r.len() != 0 {
		t.Fatalf("ring not empty after drain: len = %d", r.len())
	}
}

func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

// TestFrameRingBackpressure checks the full/empty edge cases: pushBurst
// reports partial fills against a full ring, push refuses outright, and
// popBurst drains exactly what was accepted.
func TestFrameRingBackpressure(t *testing.T) {
	r := newFrameRing(4)
	frames := make([]dataFrame, 6)
	for i := range frames {
		frames[i].injected = int64(i)
	}
	if n := r.pushBurst(frames); n != 4 {
		t.Fatalf("pushBurst into empty ring of 4 = %d, want 4", n)
	}
	if r.push(&frames[0]) {
		t.Fatal("push into full ring succeeded")
	}
	if n := r.pushBurst(frames); n != 0 {
		t.Fatalf("pushBurst into full ring = %d, want 0", n)
	}
	out := make([]dataFrame, 8)
	if n := r.popBurst(out); n != 4 {
		t.Fatalf("popBurst = %d, want 4", n)
	}
	for i := 0; i < 4; i++ {
		if out[i].injected != int64(i) {
			t.Fatalf("frame %d: injected = %d", i, out[i].injected)
		}
	}
	if n := r.popBurst(out); n != 0 {
		t.Fatalf("popBurst from empty ring = %d, want 0", n)
	}
	// Freed slots are reusable: the ring accepts a fresh burst after drain.
	if n := r.pushBurst(frames[:3]); n != 3 {
		t.Fatalf("pushBurst after drain = %d, want 3", n)
	}
	if got := r.len(); got != 3 {
		t.Fatalf("len = %d, want 3", got)
	}
}
