package proto

import (
	"bytes"
	"testing"
)

// FuzzReadMessage feeds arbitrary byte streams to the frame decoder: no
// panics, no unbounded allocation (the MaxFrame guard), and anything
// accepted must re-encode and re-decode to the same message type.
func FuzzReadMessage(f *testing.F) {
	for _, m := range allMessages() {
		f.Add(Encode(nil, m))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 99})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		out := Encode(nil, msg)
		again, err := ReadMessage(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if again.Type() != msg.Type() {
			t.Fatalf("type changed across round trip: %v vs %v", again.Type(), msg.Type())
		}
	})
}

// FuzzDecodeFrame feeds arbitrary byte slices to the in-memory frame
// decoder: it must never panic, must agree with the streaming decoder on
// acceptance, must report a consistent consumed-byte count, and anything
// accepted must survive a re-encode/re-decode round trip.
func FuzzDecodeFrame(f *testing.F) {
	for _, m := range allMessages() {
		f.Add(Encode(nil, m))
	}
	// Two frames back to back: consumed must point at the second.
	double := Encode(Encode(nil, &BarrierReq{XID: 1}), &BarrierReply{XID: 1})
	f.Add(double)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 1, 99})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	// CacheInstall declaring a huge rule count with no rule bytes: must be
	// rejected as truncated, not allocated.
	bomb := appendU32(nil, 0)
	bomb = append(bomb, byte(MsgCacheInstall))
	bomb = appendU32(bomb, 7)          // ingress
	bomb = appendU32(bomb, 0x00030000) // count ≫ payload
	putU32 := func(b []byte, v uint32) {
		b[0] = byte(v >> 24)
		b[1] = byte(v >> 16)
		b[2] = byte(v >> 8)
		b[3] = byte(v)
	}
	putU32(bomb[:4], uint32(len(bomb)-4))
	f.Add(bomb)

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, n, err := DecodeFrame(data)
		streamed, serr := ReadMessage(bytes.NewReader(data))
		if (err == nil) != (serr == nil) {
			t.Fatalf("DecodeFrame err=%v but ReadMessage err=%v", err, serr)
		}
		if err != nil {
			if n != 0 {
				t.Fatalf("failed decode consumed %d bytes", n)
			}
			return
		}
		if n < 5 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if streamed.Type() != msg.Type() {
			t.Fatalf("decoders disagree: %v vs %v", msg.Type(), streamed.Type())
		}
		out := Encode(nil, msg)
		again, n2, err := DecodeFrame(out)
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if n2 != len(out) {
			t.Fatalf("re-decode consumed %d of %d", n2, len(out))
		}
		if again.Type() != msg.Type() {
			t.Fatalf("type changed across round trip: %v vs %v", again.Type(), msg.Type())
		}
	})
}
