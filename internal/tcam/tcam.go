// Package tcam models a switch rule table with TCAM semantics: prioritized
// ternary rules, highest-priority-first lookup, per-rule packet/byte
// counters, idle and hard timeouts, and a capacity limit.
//
// Time is explicit (float64 seconds) rather than wall clock so the table is
// deterministic under the discrete-event simulator; the wire-mode prototype
// feeds it monotonic time converted to seconds.
//
// Concurrency: the table is safe for concurrent use with a read-mostly
// design. Lookups (Lookup, Peek, Len, Entries, Rules, NextExpiry) walk an
// immutable snapshot published through an atomic pointer and update
// per-entry counters with atomics, so the data-plane hot path never takes
// a lock and never contends with rule installs. Mutations (Insert, Delete,
// DeleteWhere, Advance) serialize on an internal mutex and mark the
// snapshot dirty. Republishing is adaptive: while mutations keep landing
// (a bulk policy install, a miss storm churning an exact-match cache),
// reads scan the live table under the mutex — an O(n) walk either way —
// instead of paying an O(n) snapshot copy per mutation; once the table
// quiesces (a dirty read observes no mutation since the previous one),
// the snapshot is rebuilt, published atomically, and reads go lock-free
// again. Either way a lookup observes either the complete old table or
// the complete new one, never a half-applied mutation — the linearization
// point is the mutex acquisition (churning) or the snapshot publish
// (quiesced).
package tcam

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"difane/internal/flowspace"
)

// ErrFull is returned by Insert when the table is at capacity and no
// eviction candidate exists.
var ErrFull = errors.New("tcam: table full")

// Entry is a point-in-time view of one installed rule plus its runtime
// state, as returned by Entries and passed to OnExpire and DeleteWhere
// predicates.
type Entry struct {
	Rule flowspace.Rule

	// Counters.
	Packets uint64
	Bytes   uint64

	// Timeouts, in seconds; zero disables. IdleTimeout expires the entry
	// when no packet has matched for that long; HardTimeout expires it that
	// long after installation regardless of traffic.
	IdleTimeout float64
	HardTimeout float64

	installed float64
	lastHit   float64
}

// Installed returns the entry's install time in table seconds.
func (e Entry) Installed() float64 { return e.installed }

// LastHit returns the entry's last-hit time (the install time when the
// entry has never matched a packet).
func (e Entry) LastHit() float64 { return e.lastHit }

// entry is the live representation: immutable rule and timeouts, atomic
// counters so lock-free lookups can update them concurrently.
type entry struct {
	rule flowspace.Rule

	idleTimeout float64
	hardTimeout float64
	installed   float64

	packets     atomic.Uint64
	bytes       atomic.Uint64
	lastHitBits atomic.Uint64 // math.Float64bits of the last-hit time
}

func (e *entry) lastHit() float64      { return math.Float64frombits(e.lastHitBits.Load()) }
func (e *entry) setLastHit(at float64) { e.lastHitBits.Store(math.Float64bits(at)) }

// snapshot converts the live entry to its exported point-in-time view.
func (e *entry) snapshot() Entry {
	return Entry{
		Rule:        e.rule,
		Packets:     e.packets.Load(),
		Bytes:       e.bytes.Load(),
		IdleTimeout: e.idleTimeout,
		HardTimeout: e.hardTimeout,
		installed:   e.installed,
		lastHit:     e.lastHit(),
	}
}

// expiresAt returns the earliest time the entry can expire, or +inf-ish.
func (e *entry) expiresAt() float64 {
	const never = 1e30
	t := never
	if e.idleTimeout > 0 && e.lastHit()+e.idleTimeout < t {
		t = e.lastHit() + e.idleTimeout
	}
	if e.hardTimeout > 0 && e.installed+e.hardTimeout < t {
		t = e.installed + e.hardTimeout
	}
	return t
}

// EvictionPolicy selects a victim when the table is full.
type EvictionPolicy int

const (
	// EvictNone rejects inserts into a full table with ErrFull.
	EvictNone EvictionPolicy = iota
	// EvictLRU removes the entry with the oldest last-hit time.
	EvictLRU
	// EvictLFU removes the entry with the fewest matched packets.
	EvictLFU
)

// VictimCandidate is one eviction candidate handed to a VictimFunc: the
// installed rule plus the runtime state a cost model scores with. Pinned
// entries are filtered out before the picker ever sees them.
type VictimCandidate struct {
	ID        uint64
	Rule      flowspace.Rule
	Packets   uint64
	LastHit   float64
	Installed float64
}

// VictimFunc picks which candidate to evict when the table is over
// capacity, returning an index into cands or a negative value to decline
// (the table then falls back to its built-in policy ordering). It is
// called with the table mutex held, so implementations must not call
// back into the table.
type VictimFunc func(now float64, cands []VictimCandidate) int

// Table is a TCAM-semantics rule table with a lock-free lookup path and
// mutex-serialized mutations (see the package comment for the model).
type Table struct {
	name     string
	capacity int // 0 = unlimited
	policy   EvictionPolicy

	// mu serializes mutations. entries and byID are owned by mu; view is
	// the immutable snapshot the lock-free read path walks. Mutations set
	// dirty instead of rebuilding the snapshot inline, so bulk installs
	// stay O(1) per rule; reads that land while dirty scan entries under
	// mu, and the snapshot republishes only once mutations quiesce
	// (maybeRepublishLocked) — version counts mutations and lastDirtyRead
	// remembers the version the previous dirty read saw, both owned by mu.
	mu            sync.Mutex
	entries       []*entry // kept in TCAM order: highest priority first
	byID          map[uint64]*entry
	version       uint64
	lastDirtyRead uint64
	view          atomic.Pointer[[]viewEntry]
	dirty         atomic.Bool

	// pins refcounts rule IDs protected from eviction (in-flight installs);
	// victimFn, when set, overrides the policy's victim ordering. Both are
	// owned by mu.
	pins     map[uint64]int
	victimFn VictimFunc

	// OnExpire, if non-nil, is invoked for each entry removed by Advance.
	// Set it before the table is shared across goroutines.
	OnExpire func(Entry)

	// OnInstall, if non-nil, is invoked after Insert commits a rule
	// (including replace-in-place). OnEvict is invoked for each entry a
	// capacity eviction removes. Both run outside the table's mutex, after
	// the mutation is visible, so they may call back into the table; like
	// OnExpire they must be set before the table is shared across
	// goroutines.
	OnInstall func(Entry)
	OnEvict   func(Entry)

	// Misses counts lookups that matched no entry.
	Misses atomic.Uint64
	// Hits counts lookups that matched an entry.
	Hits atomic.Uint64
	// Evictions counts capacity evictions.
	Evictions atomic.Uint64
}

// New returns an empty table. capacity 0 means unlimited.
func New(name string, capacity int, policy EvictionPolicy) *Table {
	t := &Table{
		name:     name,
		capacity: capacity,
		policy:   policy,
		byID:     make(map[uint64]*entry),
	}
	t.publishLocked()
	return t
}

// viewEntry is one slot of the published read snapshot: the match is
// inlined so a lookup scans contiguous memory instead of chasing an entry
// pointer per rule — a miss walks the whole table, so scan locality sets
// the miss path's cost — and the entry pointer is touched only on a hit.
type viewEntry struct {
	match flowspace.Match
	e     *entry
}

// publishLocked rebuilds the read snapshot from entries. Callers hold mu
// (or, in New, exclusive ownership).
func (t *Table) publishLocked() {
	v := make([]viewEntry, len(t.entries))
	for i, e := range t.entries {
		v[i] = viewEntry{match: e.rule.Match, e: e}
	}
	t.view.Store(&v)
	t.dirty.Store(false)
}

// markDirtyLocked records one mutation: the published snapshot is stale
// and the quiescence clock restarts. Callers hold mu.
func (t *Table) markDirtyLocked() {
	t.version++
	t.dirty.Store(true)
}

// maybeRepublishLocked decides, on a read that found the snapshot dirty,
// whether the table has quiesced. It republishes (and reports true) only
// when no mutation has landed since the previous dirty read — rebuilding
// mid-churn would pay an O(n) snapshot copy per mutation, which is what
// this scheme exists to avoid. Reporting false means the caller should
// scan t.entries under mu instead. Callers hold mu.
func (t *Table) maybeRepublishLocked() bool {
	if !t.dirty.Load() {
		return true // raced with another reader's republish
	}
	if t.version == t.lastDirtyRead {
		t.publishLocked()
		return true
	}
	t.lastDirtyRead = t.version
	return false
}

// loadView returns the current immutable snapshot, or nil when the table
// is churning — mutations are still landing, so the caller must scan
// t.entries under mu (loadView leaves mu held in that case; it returns
// with mu released otherwise). The dirty fast path keeps steady-state
// reads lock-free: the mutex is touched only by reads racing a mutation.
func (t *Table) loadView() ([]viewEntry, bool) {
	if !t.dirty.Load() {
		return *t.view.Load(), true
	}
	t.mu.Lock()
	if t.maybeRepublishLocked() {
		t.mu.Unlock()
		return *t.view.Load(), true
	}
	return nil, false
}

// Name returns the table's diagnostic name.
func (t *Table) Name() string { return t.name }

// SetVictimFn installs a custom eviction picker consulted before the
// built-in policy ordering (cost-aware caching). Set it before the table
// is shared across goroutines.
func (t *Table) SetVictimFn(fn VictimFunc) {
	t.mu.Lock()
	t.victimFn = fn
	t.mu.Unlock()
}

// Pin protects rule id from eviction until a matching Unpin. Pins are
// refcounted, may be taken before the rule is installed (an in-flight
// install), and never block expiry or explicit deletion — only capacity
// eviction skips pinned entries.
func (t *Table) Pin(id uint64) {
	t.mu.Lock()
	if t.pins == nil {
		t.pins = make(map[uint64]int)
	}
	t.pins[id]++
	t.mu.Unlock()
}

// Unpin releases one Pin reference on rule id.
func (t *Table) Unpin(id uint64) {
	t.mu.Lock()
	if c := t.pins[id]; c <= 1 {
		delete(t.pins, id)
	} else {
		t.pins[id] = c - 1
	}
	t.mu.Unlock()
}

// Pinned reports whether rule id currently holds at least one pin.
func (t *Table) Pinned(id uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pins[id] > 0
}

// SetCapacity changes the entry limit at time now and evicts down to the
// new limit via the eviction ordering (OnEvict fires for each victim,
// outside the mutex). Capacity 0 is unlimited; a negative capacity
// admits nothing — the TCAM-budget enforcement uses it when mandatory
// rules consume the whole budget. Returns the number of entries evicted.
func (t *Table) SetCapacity(now float64, capacity int) int {
	t.mu.Lock()
	t.capacity = capacity
	var evicted []*entry
	if capacity != 0 {
		limit := capacity
		if limit < 0 {
			limit = 0
		}
		for len(t.entries) > limit {
			victim := t.pickVictimLocked(now)
			if victim == nil {
				break // everything left is pinned
			}
			t.removeEntryLocked(victim)
			t.Evictions.Add(1)
			evicted = append(evicted, victim)
		}
		if len(evicted) > 0 {
			t.markDirtyLocked()
		}
	}
	t.mu.Unlock()
	if t.OnEvict != nil {
		for _, e := range evicted {
			t.OnEvict(e.snapshot())
		}
	}
	return len(evicted)
}

// atLimitLocked reports whether an insert would exceed the entry limit.
func (t *Table) atLimitLocked() bool {
	if t.capacity == 0 {
		return false
	}
	limit := t.capacity
	if limit < 0 {
		limit = 0
	}
	return len(t.entries) >= limit
}

// Len returns the number of installed entries.
func (t *Table) Len() int {
	if view, ok := t.loadView(); ok {
		return len(view)
	}
	defer t.mu.Unlock()
	return len(t.entries)
}

// Capacity returns the entry limit (0 = unlimited, negative = admits
// nothing; see SetCapacity).
func (t *Table) Capacity() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.capacity
}

// Insert installs a rule at time now. If a rule with the same ID exists it
// is replaced in place (counters reset, as an OpenFlow flow-mod would). If
// the table is full the eviction policy picks a victim; with EvictNone the
// insert fails with ErrFull.
func (t *Table) Insert(now float64, r flowspace.Rule, idle, hard float64) error {
	var evicted *entry
	t.mu.Lock()
	if old, ok := t.byID[r.ID]; ok {
		t.removeEntryLocked(old)
	}
	if t.atLimitLocked() {
		if t.policy == EvictNone {
			t.markDirtyLocked()
			t.mu.Unlock()
			return ErrFull
		}
		victim := t.pickVictimLocked(now)
		if victim == nil {
			t.markDirtyLocked()
			t.mu.Unlock()
			return ErrFull
		}
		t.removeEntryLocked(victim)
		t.Evictions.Add(1)
		evicted = victim
	}
	e := &entry{
		rule:        r,
		idleTimeout: idle,
		hardTimeout: hard,
		installed:   now,
	}
	e.setLastHit(now)
	// Insert preserving TCAM order.
	i := sort.Search(len(t.entries), func(i int) bool {
		return !t.entries[i].rule.Before(r)
	})
	t.entries = append(t.entries, nil)
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = e
	t.byID[r.ID] = e
	t.markDirtyLocked()
	t.mu.Unlock()
	// Hooks fire outside mu, after the mutation is visible (same contract
	// as Advance's OnExpire).
	if evicted != nil && t.OnEvict != nil {
		t.OnEvict(evicted.snapshot())
	}
	if t.OnInstall != nil {
		t.OnInstall(e.snapshot())
	}
	return nil
}

// Delete removes the rule with the given ID, reporting whether it existed.
func (t *Table) Delete(id uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.byID[id]
	if !ok {
		return false
	}
	t.removeEntryLocked(e)
	t.markDirtyLocked()
	return true
}

// DeleteWhere removes all entries for which pred returns true and returns
// how many were removed.
func (t *Table) DeleteWhere(pred func(Entry) bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var victims []*entry
	for _, e := range t.entries {
		if pred(e.snapshot()) {
			victims = append(victims, e)
		}
	}
	for _, e := range victims {
		t.removeEntryLocked(e)
	}
	if len(victims) > 0 {
		t.markDirtyLocked()
	}
	return len(victims)
}

func (t *Table) removeEntryLocked(e *entry) {
	delete(t.byID, e.rule.ID)
	for i, x := range t.entries {
		if x == e {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			return
		}
	}
}

// pickVictimLocked returns the entry to evict under a total order, so
// eviction is deterministic: LRU orders by (lastHit, packets, ID)
// ascending, LFU by (packets, lastHit, ID) ascending. Pinned entries
// (in-flight installs) are never selected. When a VictimFunc is set it is
// consulted first over the unpinned candidates; the built-in ordering is
// the fallback when it declines.
func (t *Table) pickVictimLocked(now float64) *entry {
	if t.victimFn != nil {
		var cands []VictimCandidate
		var live []*entry
		for _, e := range t.entries {
			if t.pins[e.rule.ID] > 0 {
				continue
			}
			cands = append(cands, VictimCandidate{
				ID:        e.rule.ID,
				Rule:      e.rule,
				Packets:   e.packets.Load(),
				LastHit:   e.lastHit(),
				Installed: e.installed,
			})
			live = append(live, e)
		}
		if len(cands) == 0 {
			return nil
		}
		if i := t.victimFn(now, cands); i >= 0 && i < len(live) {
			return live[i]
		}
	}
	var victim *entry
	better := func(a, b *entry) bool {
		switch t.policy {
		case EvictLRU:
			if ah, bh := a.lastHit(), b.lastHit(); ah != bh {
				return ah < bh
			}
			if ap, bp := a.packets.Load(), b.packets.Load(); ap != bp {
				return ap < bp
			}
		case EvictLFU:
			if ap, bp := a.packets.Load(), b.packets.Load(); ap != bp {
				return ap < bp
			}
			if ah, bh := a.lastHit(), b.lastHit(); ah != bh {
				return ah < bh
			}
		}
		return a.rule.ID < b.rule.ID
	}
	for _, e := range t.entries {
		if t.pins[e.rule.ID] > 0 {
			continue
		}
		if victim == nil || better(e, victim) {
			victim = e
		}
	}
	return victim
}

// Lookup returns the highest-priority entry matching k, updating counters
// with the packet's size, and false on a miss. In steady state it is
// lock-free: it walks the published snapshot and touches only atomic
// counters, so it never contends with concurrent installs. While installs
// are churning it scans the live table under the mutex instead (see the
// package comment).
func (t *Table) Lookup(now float64, k flowspace.Key, size int) (flowspace.Rule, bool) {
	if view, ok := t.loadView(); ok {
		for i := range view {
			if view[i].match.Matches(k) {
				return t.hit(view[i].e, now, size), true
			}
		}
		t.Misses.Add(1)
		return flowspace.Rule{}, false
	}
	defer t.mu.Unlock()
	for _, e := range t.entries {
		if e.rule.Match.Matches(k) {
			return t.hit(e, now, size), true
		}
	}
	t.Misses.Add(1)
	return flowspace.Rule{}, false
}

// View is a per-burst acquisition of the table's read state: one loadView
// (a single atomic load in steady state) serves every lookup of a packet
// burst, and the table-level hit/miss counters are folded in with one
// atomic add each at Release instead of one per packet. While the table is
// churning, AcquireView holds the table mutex until Release — installs
// wait at most one burst, the same bound a churning per-packet Lookup
// already imposes per packet. A View must be Released on the goroutine
// that acquired it, must not outlive the burst, and must not interleave
// with another View of the same table on the same goroutine.
type View struct {
	t      *Table
	view   []viewEntry
	locked bool
	hits   uint64
	misses uint64
}

// AcquireView starts a burst of lookups against a consistent table state.
func (t *Table) AcquireView() View {
	if view, ok := t.loadView(); ok {
		return View{t: t, view: view}
	}
	// loadView left mu held: serve the burst from the live entries.
	return View{t: t, locked: true}
}

// Lookup is Table.Lookup against the view's snapshot; per-entry counters
// update immediately (they are atomics either way), table-level hit/miss
// tallies accumulate locally until Release.
func (v *View) Lookup(now float64, k flowspace.Key, size int) (flowspace.Rule, bool) {
	if v.locked {
		for _, e := range v.t.entries {
			if e.rule.Match.Matches(k) {
				v.hitEntry(e, now, size)
				return e.rule, true
			}
		}
		v.misses++
		return flowspace.Rule{}, false
	}
	for i := range v.view {
		if v.view[i].match.Matches(k) {
			e := v.view[i].e
			v.hitEntry(e, now, size)
			return e.rule, true
		}
	}
	v.misses++
	return flowspace.Rule{}, false
}

func (v *View) hitEntry(e *entry, now float64, size int) {
	e.packets.Add(1)
	e.bytes.Add(uint64(size))
	e.setLastHit(now)
	v.hits++
}

// Release ends the burst: accumulated hit/miss counts land on the table
// and, if the view was taken under the mutex, the mutex is released.
func (v *View) Release() {
	if v.hits > 0 {
		v.t.Hits.Add(v.hits)
		v.hits = 0
	}
	if v.misses > 0 {
		v.t.Misses.Add(v.misses)
		v.misses = 0
	}
	if v.locked {
		v.locked = false
		v.t.mu.Unlock()
	}
	v.view = nil
}

// hit applies a matched entry's counter updates.
func (t *Table) hit(e *entry, now float64, size int) flowspace.Rule {
	e.packets.Add(1)
	e.bytes.Add(uint64(size))
	e.setLastHit(now)
	t.Hits.Add(1)
	return e.rule
}

// Peek is Lookup without counter updates — for analysis passes.
func (t *Table) Peek(k flowspace.Key) (flowspace.Rule, bool) {
	if view, ok := t.loadView(); ok {
		for i := range view {
			if view[i].match.Matches(k) {
				return view[i].e.rule, true
			}
		}
		return flowspace.Rule{}, false
	}
	defer t.mu.Unlock()
	for _, e := range t.entries {
		if e.rule.Match.Matches(k) {
			return e.rule, true
		}
	}
	return flowspace.Rule{}, false
}

// Advance expires entries whose idle or hard timeout has passed by time
// now, invoking OnExpire for each.
func (t *Table) Advance(now float64) {
	t.mu.Lock()
	var expired []*entry
	for _, e := range t.entries {
		if e.expiresAt() <= now {
			expired = append(expired, e)
		}
	}
	for _, e := range expired {
		t.removeEntryLocked(e)
	}
	if len(expired) > 0 {
		t.markDirtyLocked()
	}
	t.mu.Unlock()
	if t.OnExpire != nil {
		for _, e := range expired {
			t.OnExpire(e.snapshot())
		}
	}
}

// NextExpiry returns the earliest pending expiry time and false if no entry
// has a timeout armed.
func (t *Table) NextExpiry() (float64, bool) {
	const never = 1e30
	best := never
	for _, e := range t.liveEntries() {
		if at := e.expiresAt(); at < best {
			best = at
		}
	}
	return best, best < never
}

// liveEntries returns the current entry set for a cold-path read: the
// published snapshot's entries when clean, or a copy taken under mu while
// churning (a copy, so the caller can iterate without holding the lock).
func (t *Table) liveEntries() []*entry {
	if view, ok := t.loadView(); ok {
		out := make([]*entry, len(view))
		for i := range view {
			out[i] = view[i].e
		}
		return out
	}
	out := make([]*entry, len(t.entries))
	copy(out, t.entries)
	t.mu.Unlock()
	return out
}

// Entries returns a snapshot of the entries in TCAM order.
func (t *Table) Entries() []Entry {
	live := t.liveEntries()
	out := make([]Entry, len(live))
	for i, e := range live {
		out[i] = e.snapshot()
	}
	return out
}

// Counters returns the packet/byte counters for rule id.
func (t *Table) Counters(id uint64) (packets, bytes uint64, ok bool) {
	t.mu.Lock()
	e, found := t.byID[id]
	t.mu.Unlock()
	if !found {
		return 0, 0, false
	}
	return e.packets.Load(), e.bytes.Load(), true
}

// Rules returns the installed rules in TCAM order.
func (t *Table) Rules() []flowspace.Rule {
	live := t.liveEntries()
	out := make([]flowspace.Rule, len(live))
	for i, e := range live {
		out[i] = e.rule
	}
	return out
}

// String renders a small diagnostic dump.
func (t *Table) String() string {
	live := t.liveEntries()
	var b strings.Builder
	fmt.Fprintf(&b, "table %s (%d/%d entries, %d hits, %d misses)\n",
		t.name, len(live), t.Capacity(), t.Hits.Load(), t.Misses.Load())
	for _, e := range live {
		fmt.Fprintf(&b, "  %v pkts=%d\n", e.rule, e.packets.Load())
	}
	return b.String()
}
