package experiments

import (
	"fmt"
	"strings"

	"difane/internal/core"
	"difane/internal/metrics"
	"difane/internal/workload"
)

// --- F4: TCAM entries per authority switch vs k --------------------------------

// PartitionPoint is one (network, k) sample.
type PartitionPoint struct {
	Network     string
	Authorities int
	MaxEntries  int // largest per-authority TCAM load
	Total       int // total entries across partitions
	Rules       int // original rule count
}

// PartitionTCAMResult is the F4 sweep.
type PartitionTCAMResult struct{ Points []PartitionPoint }

// leafFor sizes the partitioner's leaf capacity for k authority switches:
// half the even share, floored so pathological over-splitting (every leaf
// re-carrying the broad rules) cannot occur at small test scales.
func leafFor(rules, k int) int {
	leaf := rules/(2*k) + 1
	if leaf < 16 {
		leaf = 16
	}
	return leaf
}

// FigPartitionTCAM sweeps the number of authority switches for each
// network and reports the largest per-switch TCAM load: the paper's claim
// is near-1/k decay with small splitting overhead.
func FigPartitionTCAM(o Options) *PartitionTCAMResult {
	ks := []int{1, 2, 4, 8, 16, 32, 64}
	if o.Scale < workload.ScaleBench {
		ks = []int{1, 2, 4, 8}
	}
	res := &PartitionTCAMResult{}
	for _, spec := range workload.AllNetworks(o.Seed, o.Scale) {
		for _, k := range ks {
			auths := make([]uint32, k)
			for i := range auths {
				auths[i] = uint32(i + 1)
			}
			parts := core.BuildPartitions(spec.Policy, core.PartitionConfig{
				MaxRulesPerPartition: leafFor(len(spec.Policy), k),
			})
			a, err := core.Assign(parts, auths)
			if err != nil {
				panic(err)
			}
			max := 0
			for _, load := range a.LoadPerAuthority() {
				if load > max {
					max = load
				}
			}
			res.Points = append(res.Points, PartitionPoint{
				Network:     spec.Name,
				Authorities: k,
				MaxEntries:  max,
				Total:       core.TotalEntries(parts),
				Rules:       len(spec.Policy),
			})
		}
	}
	return res
}

// Render prints the F4 table.
func (r *PartitionTCAMResult) Render() string {
	var b strings.Builder
	b.WriteString(header("F4", "TCAM entries per authority switch vs k"))
	var tb metrics.Table
	tb.AddRow("network", "k", "max-entries/switch", "ideal(n/k)", "total")
	for _, p := range r.Points {
		tb.AddRowf(p.Network, p.Authorities, p.MaxEntries, p.Rules/p.Authorities, p.Total)
	}
	b.WriteString(tb.String())
	return b.String()
}

// --- F5: rule-splitting overhead ----------------------------------------------

// SplitPoint is one (network, k) overhead sample.
type SplitPoint struct {
	Network     string
	Authorities int
	Overhead    float64 // total entries ÷ original rules
}

// SplitOverheadResult is the F5 sweep.
type SplitOverheadResult struct{ Points []SplitPoint }

// FigSplitOverhead reports the duplication cost of rule splitting as the
// partition count grows — the paper reports a modest factor even at many
// partitions.
func FigSplitOverhead(o Options) *SplitOverheadResult {
	ks := []int{2, 4, 8, 16, 32, 64, 128}
	if o.Scale < workload.ScaleBench {
		ks = []int{2, 8, 32}
	}
	res := &SplitOverheadResult{}
	for _, spec := range workload.AllNetworks(o.Seed, o.Scale) {
		for _, k := range ks {
			parts := core.BuildPartitions(spec.Policy, core.PartitionConfig{
				MaxRulesPerPartition: leafFor(len(spec.Policy), k),
			})
			res.Points = append(res.Points, SplitPoint{
				Network:     spec.Name,
				Authorities: k,
				Overhead:    float64(core.TotalEntries(parts)) / float64(len(spec.Policy)),
			})
		}
	}
	return res
}

// Render prints the F5 table.
func (r *SplitOverheadResult) Render() string {
	var b strings.Builder
	b.WriteString(header("F5", "rule-splitting overhead vs partitions"))
	var tb metrics.Table
	tb.AddRow("network", "k", "entries/rules")
	for _, p := range r.Points {
		tb.AddRowf(p.Network, p.Authorities, p.Overhead)
	}
	b.WriteString(tb.String())
	return b.String()
}

// --- F6: cache miss rate vs cache size -----------------------------------------

// CacheMissPoint is one (strategy, size) sample.
type CacheMissPoint struct {
	Strategy  core.CacheStrategy
	CacheSize int
	MissRate  float64 // redirected packets ÷ total forwarded packets
}

// CacheMissResult is the F6 sweep.
type CacheMissResult struct {
	Points  []CacheMissPoint
	Packets uint64
}

// FigCacheMiss replays a Zipf flow trace over the campus policy with
// varying ingress cache sizes and strategies. Shape: misses fall steeply
// with cache size (Zipf traffic); cover-set needs far fewer entries than
// dependent-set on dependency-heavy policies.
func FigCacheMiss(o Options) *CacheMissResult {
	spec := workload.CampusNetwork(o.Seed, o.Scale)
	flows := workload.GenerateTraffic(spec, workload.TrafficConfig{
		Flows: scaleInt(o, 30000), Rate: 5000,
		Population: scaleInt(o, 20000), ZipfAlpha: 1.3,
		PacketsMean: 4, Seed: o.Seed + 20,
	})
	sizes := []int{16, 64, 256, 1024, 4096}
	if o.Scale < workload.ScaleBench {
		sizes = []int{16, 128, 1024}
	}
	res := &CacheMissResult{}
	for _, strat := range []core.CacheStrategy{core.StrategyCover, core.StrategyDependent, core.StrategyExact} {
		for _, size := range sizes {
			auths := core.PlaceAuthorities(spec.Graph, 2)
			dn, err := core.NewNetwork(spec.Graph, auths, spec.Policy, core.NetworkConfig{
				Strategy:      strat,
				CacheCapacity: size,
				Partition:     core.PartitionConfig{MaxRulesPerPartition: len(spec.Policy)/2 + 1},
			})
			if err != nil {
				panic(err)
			}
			runTrace(dn.InjectPacket, dn.Run, flows)
			total := dn.M.Delivered + dn.M.Drops.Policy
			if total == 0 {
				continue
			}
			res.Packets = total
			res.Points = append(res.Points, CacheMissPoint{
				Strategy:  strat,
				CacheSize: size,
				MissRate:  float64(dn.M.Redirects) / float64(total),
			})
		}
	}
	return res
}

// Render prints the F6 table.
func (r *CacheMissResult) Render() string {
	var b strings.Builder
	b.WriteString(header("F6", "cache miss rate vs ingress cache size (Zipf trace, campus)"))
	var tb metrics.Table
	tb.AddRow("strategy", "cache-size", "miss-rate")
	for _, p := range r.Points {
		tb.AddRow(p.Strategy.String(), fmt.Sprintf("%d", p.CacheSize),
			fmt.Sprintf("%.4f", p.MissRate))
	}
	b.WriteString(tb.String())
	return b.String()
}

// --- F7: stretch CDF ------------------------------------------------------------

// StretchResult maps authority counts to miss-traffic stretch
// distributions.
type StretchResult struct {
	Ks     []int
	Dists  []metrics.Dist
	Placed [][]uint32
}

// FigStretch measures the path stretch of redirected (first) packets on
// the campus topology as the number of authority switches grows: more
// authorities put one closer to any ingress, shrinking the detour.
func FigStretch(o Options) *StretchResult {
	spec := workload.CampusNetwork(o.Seed, o.Scale)
	flows := workload.UniformTraffic(spec, workload.TrafficConfig{
		Flows: scaleInt(o, 10000), Rate: 5000, Seed: o.Seed + 30,
	})
	ks := []int{1, 2, 4, 8}
	res := &StretchResult{Ks: ks}
	for _, k := range ks {
		auths := core.PlaceAuthorities(spec.Graph, k)
		// Full replication: every partition at every authority switch, so
		// each ingress redirects to its nearest authority. This is the
		// TCAM-for-stretch trade the experiment quantifies.
		dn, err := core.NewNetwork(spec.Graph, auths, spec.Policy, core.NetworkConfig{
			Strategy:    core.StrategyCover,
			Replication: k,
			Partition:   core.PartitionConfig{MaxRulesPerPartition: len(spec.Policy)/k + 1},
		})
		if err != nil {
			panic(err)
		}
		runTrace(dn.InjectPacket, dn.Run, flows)
		res.Dists = append(res.Dists, dn.M.Stretch)
		res.Placed = append(res.Placed, auths)
	}
	return res
}

// Render prints the F7 quantiles.
func (r *StretchResult) Render() string {
	var b strings.Builder
	b.WriteString(header("F7", "path stretch of redirected packets vs # authorities (campus)"))
	var tb metrics.Table
	tb.AddRow("k", "p50", "p90", "p99", "mean", "samples")
	for i, k := range r.Ks {
		d := &r.Dists[i]
		tb.AddRowf(k, d.Percentile(50), d.Percentile(90), d.Percentile(99), d.Mean(), d.N())
	}
	b.WriteString(tb.String())
	return b.String()
}
