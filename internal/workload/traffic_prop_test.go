package workload

import (
	"math"
	"sort"
	"testing"

	"difane/internal/flowspace"
)

// These are property tests for the trace generator's two statistical
// contracts: flow popularity follows the configured Zipf exponent, and
// flow arrivals form a Poisson process. Both are what the soak engine
// and the paper's cache-miss experiments assume — a silent regression
// here (a swapped parameter, a non-exponential gap) would skew every
// downstream miss-rate figure without failing any existing test.

// rankFrequencySlope fits the log-log rank→count line over the sorted
// per-key packet counts, returning the (negative) slope. Head rank 1 and
// the count-1 tail are excluded: rand.Zipf's P(k) ∝ (1+k)^(-alpha) bends
// the extreme head away from the pure power law, and the tail is
// quantization noise.
func rankFrequencySlope(counts []int) (slope float64, ranks int) {
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	var xs, ys []float64
	for i, c := range counts {
		rank := i + 1
		if rank < 2 {
			continue
		}
		if c < 5 {
			break
		}
		xs = append(xs, math.Log(float64(rank)))
		ys = append(ys, math.Log(float64(c)))
	}
	if len(xs) < 10 {
		return 0, len(xs)
	}
	// Least squares.
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx), len(xs)
}

func TestTrafficZipfSlopeMatchesAlpha(t *testing.T) {
	spec := VPNNetwork(13, ScaleTest)
	for _, alpha := range []float64{1.2, 1.6} {
		flows := GenerateTraffic(spec, TrafficConfig{
			Flows: 150000, Rate: 10000, ZipfAlpha: alpha,
			Population: 4096, Seed: 99,
		})
		byKey := map[flowspace.Key]int{}
		for _, f := range flows {
			byKey[f.Key]++
		}
		counts := make([]int, 0, len(byKey))
		for _, c := range byKey {
			counts = append(counts, c)
		}
		slope, ranks := rankFrequencySlope(counts)
		if ranks < 10 {
			t.Fatalf("alpha=%.1f: only %d usable ranks", alpha, ranks)
		}
		// The fitted slope of a Zipf(alpha) sample is -alpha.
		if got := -slope; math.Abs(got-alpha) > 0.3 {
			t.Errorf("alpha=%.1f: fitted rank-frequency slope %.3f (over %d ranks), want within 0.3",
				alpha, got, ranks)
		}
	}
}

func TestTrafficPoissonDispersion(t *testing.T) {
	spec := VPNNetwork(13, ScaleTest)
	const (
		nFlows = 40000
		rate   = 2000.0
		window = 0.1
	)
	flows := GenerateTraffic(spec, TrafficConfig{
		Flows: nFlows, Rate: rate, Seed: 7,
	})
	if len(flows) != nFlows {
		t.Fatalf("generated %d flows, want %d", len(flows), nFlows)
	}

	// Dispersion: for a Poisson process, windowed arrival counts have
	// variance ≈ mean (index of dispersion 1). Clumped arrivals push it
	// above 1, regular spacing below.
	span := flows[len(flows)-1].Start
	nWin := int(span / window)
	if nWin < 50 {
		t.Fatalf("trace too short for a dispersion check: %d windows", nWin)
	}
	counts := make([]float64, nWin)
	for _, f := range flows {
		if w := int(f.Start / window); w < nWin {
			counts[w]++
		}
	}
	var mean float64
	for _, c := range counts {
		mean += c
	}
	mean /= float64(nWin)
	var variance float64
	for _, c := range counts {
		variance += (c - mean) * (c - mean)
	}
	variance /= float64(nWin - 1)
	if d := variance / mean; d < 0.7 || d > 1.3 {
		t.Errorf("index of dispersion %.3f over %d windows (mean %.1f), want ≈1",
			d, nWin, mean)
	}

	// Inter-arrival shape: exponential gaps have coefficient of variation
	// 1; a deterministic or uniform spacing would show up here even if
	// the window counts happened to pass.
	var gaps []float64
	for i := 1; i < len(flows); i++ {
		gaps = append(gaps, flows[i].Start-flows[i-1].Start)
	}
	var gm float64
	for _, g := range gaps {
		gm += g
	}
	gm /= float64(len(gaps))
	var gv float64
	for _, g := range gaps {
		gv += (g - gm) * (g - gm)
	}
	gv /= float64(len(gaps) - 1)
	if cv := math.Sqrt(gv) / gm; cv < 0.85 || cv > 1.15 {
		t.Errorf("inter-arrival CV %.3f, want ≈1 (exponential)", cv)
	}
	// And the realized rate matches the configured one.
	if got := float64(len(flows)-1) / span; math.Abs(got-rate)/rate > 0.05 {
		t.Errorf("realized arrival rate %.0f/s, configured %.0f/s", got, rate)
	}
}
