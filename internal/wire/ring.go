package wire

// frameRing is a bounded single-producer single-consumer ring of dataFrames
// — the burst data plane's queue primitive, replacing per-packet channel
// sends. The producer owns tail, the consumer owns head, and each side
// publishes its cursor with an atomic store after touching the slots, so
// the other side's acquire load orders the slot memory: a push's frame
// writes happen-before the pop that observes the advanced tail, and a pop's
// frame reads happen-before the push that reuses the freed slot. No locks,
// no failed CAS loops, and whole bursts move with one cursor update each.
//
// Single-producer discipline in this package: ring in[s] of a node is fed
// only by switch s's data goroutine (direct handoff) or by the one fabric
// receive goroutine serving the s→node connection (TCP fabric) — the two
// modes are mutually exclusive per cluster. The extra injection ring is fed
// by arbitrary caller goroutines serialized by node.injectMu.

import "sync/atomic"

// ringPad keeps the producer and consumer cursors on separate cache lines
// so pushes and pops don't false-share.
type ringPad [64]byte

type frameRing struct {
	buf  []dataFrame
	mask uint64

	_    ringPad
	head atomic.Uint64 // consumer cursor: next slot to pop
	_    ringPad
	tail atomic.Uint64 // producer cursor: next slot to push
}

// newFrameRing builds a ring holding at least depth frames (rounded up to a
// power of two so index math is a mask).
func newFrameRing(depth int) *frameRing {
	n := 1
	for n < depth {
		n <<= 1
	}
	return &frameRing{buf: make([]dataFrame, n), mask: uint64(n - 1)}
}

// push appends one frame by value. Returns false when the ring is full.
// Producer side only.
func (r *frameRing) push(f *dataFrame) bool {
	tail := r.tail.Load()
	if int(tail-r.head.Load()) == len(r.buf) {
		return false
	}
	r.buf[tail&r.mask] = *f
	r.tail.Store(tail + 1)
	return true
}

// pushBurst appends as many of frames as fit, returning how many were
// pushed. Producer side only.
func (r *frameRing) pushBurst(frames []dataFrame) int {
	tail := r.tail.Load()
	free := len(r.buf) - int(tail-r.head.Load())
	n := len(frames)
	if n > free {
		n = free
	}
	for i := 0; i < n; i++ {
		r.buf[(tail+uint64(i))&r.mask] = frames[i]
	}
	r.tail.Store(tail + uint64(n))
	return n
}

// popBurst copies up to len(out) frames into out, returning how many.
// Consumer side only.
func (r *frameRing) popBurst(out []dataFrame) int {
	head := r.head.Load()
	n := int(r.tail.Load() - head)
	if n == 0 {
		return 0
	}
	if n > len(out) {
		n = len(out)
	}
	for i := 0; i < n; i++ {
		out[i] = r.buf[(head+uint64(i))&r.mask]
	}
	r.head.Store(head + uint64(n))
	return n
}

// len returns the current occupancy. Safe from any goroutine; exact only
// for the producer or consumer themselves.
func (r *frameRing) len() int { return int(r.tail.Load() - r.head.Load()) }
