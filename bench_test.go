// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure (see DESIGN.md §3 for the index). Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding experiment at full scale and
// reports its headline numbers as custom metrics; `go run ./cmd/difane-bench`
// prints the full tables.
package difane_test

import (
	"testing"
	"time"

	"difane"
	"difane/experiments"
	"difane/internal/flowspace"
	"difane/internal/packet"
	"difane/internal/proto"
)

// benchOpts runs the full-size workloads.
func benchOpts() experiments.Options { return experiments.Bench() }

func BenchmarkTableNetworks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.TableNetworks(benchOpts())
		if len(r.Rows) != 4 {
			b.Fatal("bad row count")
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

func BenchmarkFigFirstPacketDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigFirstPacketDelay(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(r.DIFANE.Percentile(99)*1e3, "difane-p99-ms")
			b.ReportMetric(r.NOX.Percentile(99)*1e3, "nox-p99-ms")
		}
	}
}

func BenchmarkFigThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigThroughput(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
			last := r.Points[len(r.Points)-1]
			b.ReportMetric(last.DIFANE, "difane-setups/s")
			b.ReportMetric(last.NOX, "nox-setups/s")
		}
	}
}

func BenchmarkFigAuthorityScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigAuthorityScaling(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(r.Points[len(r.Points)-1].Setups, "setups/s-at-kmax")
		}
	}
}

func BenchmarkFigPartitionTCAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigPartitionTCAM(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

func BenchmarkFigSplitOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigSplitOverhead(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

func BenchmarkFigCacheMiss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigCacheMiss(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

func BenchmarkFigStretch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigStretch(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(r.Dists[0].Mean(), "stretch-k1")
			b.ReportMetric(r.Dists[len(r.Dists)-1].Mean(), "stretch-kmax")
		}
	}
}

func BenchmarkFigFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigFailover(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(float64(r.WithBackupLost), "lost-with-backup")
			b.ReportMetric(float64(r.WithoutBackupLost), "lost-without-backup")
		}
	}
}

func BenchmarkFigPolicyChange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigPolicyChange(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

func BenchmarkFigCacheTimeout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigCacheTimeout(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

func BenchmarkFigControlLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigControlLoad(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(float64(r.NOXRuntime)/float64(r.Flows), "nox-msgs/flow")
			b.ReportMetric(float64(r.DIFANERuntime)/float64(r.Flows), "difane-msgs/flow")
		}
	}
}

func BenchmarkAblationEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationEviction(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

func BenchmarkFigLinkLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigLinkLoad(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(float64(r.Points[0].MaxLoad), "max-link-k1")
			b.ReportMetric(float64(r.Points[len(r.Points)-1].MaxLoad), "max-link-kmax")
		}
	}
}

func BenchmarkAblationRebalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationRebalance(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(r.LoadBefore, "max-share-before")
			b.ReportMetric(r.LoadAfter, "max-share-after")
		}
	}
}

func BenchmarkAblationCacheStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationCacheStrategy(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

func BenchmarkAblationPartitioner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationPartitioner(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// --- W1: wire-path microbenchmarks -------------------------------------------

// BenchmarkWirePath measures end-to-end wire-mode flow setups: inject a
// new flow, it detours via the authority, and is delivered.
func BenchmarkWirePath(b *testing.B) {
	policy := []difane.Rule{
		{ID: 1, Priority: 1, Match: difane.MatchAll(),
			Action: difane.Action{Kind: difane.ActForward, Arg: 3}},
	}
	c, err := difane.NewCluster(difane.ClusterConfig{
		Switches:    []uint32{0, 1, 2, 3},
		Authorities: []uint32{2},
		Policy:      policy,
		Strategy:    difane.StrategyExact, // every flow takes the full path
		QueueDepth:  4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	delivered := 0
	for i := 0; delivered < b.N; i++ {
		h := packet.Header{IPSrc: uint32(i + 1), TPDst: 80}
		for !c.Inject(0, h, 100) {
			time.Sleep(time.Microsecond)
		}
		select {
		case <-c.Deliveries:
			delivered++
		case <-time.After(5 * time.Second):
			b.Fatal("delivery timeout")
		}
	}
}

// BenchmarkWirePathTCP is BenchmarkWirePath with the control plane over
// real loopback TCP sockets.
func BenchmarkWirePathTCP(b *testing.B) {
	policy := []difane.Rule{
		{ID: 1, Priority: 1, Match: difane.MatchAll(),
			Action: difane.Action{Kind: difane.ActForward, Arg: 3}},
	}
	c, err := difane.NewCluster(difane.ClusterConfig{
		Switches:    []uint32{0, 1, 2, 3},
		Authorities: []uint32{2},
		Policy:      policy,
		Strategy:    difane.StrategyExact,
		QueueDepth:  4096,
		UseTCP:      true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	delivered := 0
	for i := 0; delivered < b.N; i++ {
		h := packet.Header{IPSrc: uint32(i + 1), TPDst: 80}
		for !c.Inject(0, h, 100) {
			time.Sleep(time.Microsecond)
		}
		select {
		case <-c.Deliveries:
			delivered++
		case <-time.After(5 * time.Second):
			b.Fatal("delivery timeout")
		}
	}
}

// BenchmarkProtoEncodeDecode measures control-message round trips.
func BenchmarkProtoEncodeDecode(b *testing.B) {
	m := &proto.FlowMod{
		Table: proto.TableCache, Op: proto.OpAdd,
		Rule: flowspace.Rule{
			ID: 7, Priority: 42,
			Match: flowspace.MatchAll().
				WithPrefix(flowspace.FIPSrc, 0x0A000000, 8).
				WithExact(flowspace.FTPDst, 80),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 3},
		},
		Idle: 10, Hard: 60,
	}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = proto.Encode(buf[:0], m)
	}
	_ = buf
}

// BenchmarkPacketWire measures packet header encode+decode.
func BenchmarkPacketWire(b *testing.B) {
	p := packet.Packet{Header: packet.Header{
		EthSrc: 0x001122334455, EthDst: 0xAABBCCDDEEFF,
		EthType: packet.EthTypeIPv4, IPProto: packet.ProtoTCP,
		IPSrc: packet.IP4(10, 0, 0, 1), IPDst: packet.IP4(10, 0, 0, 2),
		TPSrc: 1234, TPDst: 80,
	}}
	p.Encapsulate(packet.EncapRedirect, 1, 2)
	var buf []byte
	var q packet.Packet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.AppendWire(buf[:0])
		if _, err := q.DecodeWire(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitioner measures partitioning a 10k-rule ACL.
func BenchmarkPartitioner(b *testing.B) {
	policy := difane.ClassBenchLike(difane.ACLConfig{
		Rules: 10000, MaxDepth: 8, PortRangeFrac: 0.25, DropFrac: 0.3,
		Egresses: []uint32{1, 2, 3, 4}, Seed: 9,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := difane.BuildPartitions(policy, difane.PartitionConfig{MaxRulesPerPartition: 512})
		if len(parts) == 0 {
			b.Fatal("no partitions")
		}
	}
}

// BenchmarkTCAMLookup measures single-table classification.
func BenchmarkTCAMLookup(b *testing.B) {
	policy := difane.ClassBenchLike(difane.ACLConfig{
		Rules: 1000, MaxDepth: 6, Egresses: []uint32{1}, Seed: 11,
	})
	var k difane.Key
	k[difane.FIPSrc] = 0x0A0B0C0D
	k[difane.FIPDst] = 0xC0A80101
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		difane.Evaluate(policy, k)
	}
}
