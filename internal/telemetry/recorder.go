package telemetry

import (
	"sort"
	"sync/atomic"
	"time"
)

// Ring is a lock-free single-producer-friendly event ring. Writers claim a
// sequence number with one atomic add and store a pointer into the slot it
// maps to; they never block and never wait for readers. Readers snapshot
// whatever is resident. When the ring wraps, old events are overwritten —
// Dropped() accounts for them exactly: dropped = writes − retained.
//
// Multiple producers are safe (the sequence claim linearizes them); in the
// wire cluster each node's data goroutine is the main producer for its own
// ring, with occasional control-plane writers.
type Ring struct {
	slots []atomic.Pointer[Event]
	mask  uint64
	seq   atomic.Uint64
}

// NewRing returns a ring holding capacity events, rounded up to a power of
// two (minimum 8).
func NewRing(capacity int) *Ring {
	c := 8
	for c < capacity {
		c <<= 1
	}
	return &Ring{slots: make([]atomic.Pointer[Event], c), mask: uint64(c) - 1}
}

// Cap returns the ring's slot count.
func (r *Ring) Cap() int { return len(r.slots) }

// Publish records ev, stamping its Seq. The event is copied to the heap;
// the caller's struct is not retained.
func (r *Ring) Publish(ev Event) {
	s := r.seq.Add(1) - 1
	ev.Seq = s
	r.slots[s&r.mask].Store(&ev)
}

// Writes returns the number of events ever published.
func (r *Ring) Writes() uint64 { return r.seq.Load() }

// Snapshot returns the resident events in sequence order.
func (r *Ring) Snapshot() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Retained returns how many events are currently resident.
func (r *Ring) Retained() int {
	n := 0
	for i := range r.slots {
		if r.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

// Dropped returns how many published events have been overwritten:
// writes − retained.
func (r *Ring) Dropped() uint64 {
	return r.Writes() - uint64(r.Retained())
}

// Recorder is the cluster-wide flight recorder: one ring per node plus an
// enable flag. When disabled, Publish is a no-op and Enabled() is a single
// atomic load — callers gate event construction on it so the tracing-off
// hot path pays one branch.
type Recorder struct {
	enabled  atomic.Bool
	start    time.Time
	rings    map[uint32]*Ring
	ids      []uint32 // sorted node IDs
	capacity int
	unknown  atomic.Uint64 // events for nodes without a ring (dropped)
}

// NewRecorder builds a recorder with one capacity-event ring per node.
func NewRecorder(nodes []uint32, capacity int, enabled bool) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	r := &Recorder{
		start:    time.Now(),
		rings:    make(map[uint32]*Ring, len(nodes)),
		capacity: capacity,
	}
	for _, id := range nodes {
		if _, ok := r.rings[id]; !ok {
			ring := NewRing(capacity)
			r.rings[id] = ring
			r.ids = append(r.ids, id)
			r.capacity = ring.Cap() // post power-of-two rounding
		}
	}
	sort.Slice(r.ids, func(i, j int) bool { return r.ids[i] < r.ids[j] })
	r.enabled.Store(enabled)
	return r
}

// Enabled reports whether tracing is on. This is the hot-path gate: one
// atomic load.
func (r *Recorder) Enabled() bool { return r.enabled.Load() }

// SetEnabled turns tracing on or off at runtime.
func (r *Recorder) SetEnabled(on bool) { r.enabled.Store(on) }

// Now returns the recorder-relative timestamp (ns since start) events are
// stamped with.
func (r *Recorder) Now() int64 { return int64(time.Since(r.start)) }

// Publish records ev on its node's ring, stamping TS if unset. A no-op
// when tracing is off. Callers on hot paths should check Enabled() first
// and only then build the event.
func (r *Recorder) Publish(ev Event) {
	if !r.enabled.Load() {
		return
	}
	ring, ok := r.rings[ev.Node]
	if !ok {
		r.unknown.Add(1)
		return
	}
	if ev.TS == 0 {
		ev.TS = r.Now()
	}
	ring.Publish(ev)
}

// Ring returns the ring for one node (nil if unknown). Exposed for tests
// and direct per-node inspection.
func (r *Recorder) Ring(node uint32) *Ring { return r.rings[node] }

// Nodes returns the sorted node IDs the recorder tracks.
func (r *Recorder) Nodes() []uint32 { return r.ids }

// Filter selects events from a recorder snapshot. Zero values mean "any"
// (Node is a pointer because 0 is a valid node ID).
type Filter struct {
	Node    *uint32 // nil = any node
	Kinds   []EventKind
	Flow    uint64 // flow hash, 0 = any
	IPSrc   uint32
	IPDst   uint32
	TPDst   uint16
	Trace   uint64 // trace ID, 0 = any
	SinceTS int64  // only events with TS > SinceTS
	Limit   int    // keep only the most recent Limit events, 0 = all
}

// Node is a convenience for building a Filter.Node value.
func Node(id uint32) *uint32 { return &id }

func (f *Filter) match(ev *Event) bool {
	if f.Node != nil && *f.Node != ev.Node {
		return false
	}
	if len(f.Kinds) > 0 {
		ok := false
		for _, k := range f.Kinds {
			if ev.Kind == k {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.Flow != 0 && ev.Flow.Hash != f.Flow {
		return false
	}
	if f.IPSrc != 0 && ev.Flow.IPSrc != f.IPSrc {
		return false
	}
	if f.IPDst != 0 && ev.Flow.IPDst != f.IPDst {
		return false
	}
	if f.TPDst != 0 && ev.Flow.TPDst != f.TPDst {
		return false
	}
	if f.Trace != 0 && ev.Trace != f.Trace {
		return false
	}
	if ev.TS <= f.SinceTS {
		return false
	}
	return true
}

// Events snapshots every ring, applies the filter, and returns the result
// ordered by timestamp (ties broken by node then sequence). With a Limit,
// only the most recent Limit events are returned.
func (r *Recorder) Events(f Filter) []Event {
	var out []Event
	for _, id := range r.ids {
		for _, ev := range r.rings[id].Snapshot() {
			ev := ev
			if f.match(&ev) {
				out = append(out, ev)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// RecorderStats summarizes the recorder's own accounting.
type RecorderStats struct {
	Enabled  bool   `json:"enabled"`
	Nodes    int    `json:"nodes"`
	Capacity int    `json:"capacity_per_node"`
	Writes   uint64 `json:"writes"`
	Retained uint64 `json:"retained"`
	Dropped  uint64 `json:"dropped"`
	Unknown  uint64 `json:"unknown_node"`
}

// Stats sums writes/retained/dropped across all rings.
func (r *Recorder) Stats() RecorderStats {
	s := RecorderStats{
		Enabled:  r.Enabled(),
		Nodes:    len(r.ids),
		Capacity: r.capacity,
		Unknown:  r.unknown.Load(),
	}
	for _, id := range r.ids {
		ring := r.rings[id]
		s.Writes += ring.Writes()
		s.Retained += uint64(ring.Retained())
	}
	s.Dropped = s.Writes - s.Retained
	return s
}
