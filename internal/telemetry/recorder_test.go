package telemetry

import (
	"sync"
	"testing"
)

func TestRingWraparoundAccounting(t *testing.T) {
	r := NewRing(64) // rounds to 64
	if r.Cap() != 64 {
		t.Fatalf("cap = %d", r.Cap())
	}
	const writes = 1000
	for i := 0; i < writes; i++ {
		r.Publish(Event{Kind: EvVerdict, Value: uint64(i)})
	}
	if got := r.Writes(); got != writes {
		t.Fatalf("writes = %d", got)
	}
	if got := r.Retained(); got != 64 {
		t.Fatalf("retained = %d, want capacity", got)
	}
	// The invariant the issue pins: dropped == writes − retained.
	if got := r.Dropped(); got != writes-64 {
		t.Fatalf("dropped = %d, want %d", got, writes-64)
	}
	// The survivors must be exactly the newest 64, in sequence order.
	snap := r.Snapshot()
	if len(snap) != 64 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i, ev := range snap {
		if want := uint64(writes - 64 + i); ev.Seq != want || ev.Value != want {
			t.Fatalf("snap[%d] = seq %d value %d, want %d", i, ev.Seq, ev.Value, want)
		}
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		r.Publish(Event{Kind: EvInstall})
	}
	if r.Retained() != 3 || r.Dropped() != 0 {
		t.Fatalf("retained=%d dropped=%d", r.Retained(), r.Dropped())
	}
}

// TestRingConcurrentPublish drives many producers through one ring under
// -race: publishes must never block, corrupt, or lose accounting.
func TestRingConcurrentPublish(t *testing.T) {
	r := NewRing(128)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id uint32) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Publish(Event{Kind: EvVerdict, Node: id})
			}
		}(uint32(w))
	}
	wg.Wait()
	if got := r.Writes(); got != workers*per {
		t.Fatalf("writes = %d", got)
	}
	if got := r.Retained(); got > r.Cap() {
		t.Fatalf("retained %d exceeds capacity %d", got, r.Cap())
	}
	seen := make(map[uint64]bool)
	for _, ev := range r.Snapshot() {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d in snapshot", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestRecorderDisabledIsNoop(t *testing.T) {
	rec := NewRecorder([]uint32{1, 2}, 64, false)
	rec.Publish(Event{Kind: EvVerdict, Node: 1})
	if s := rec.Stats(); s.Writes != 0 || s.Enabled {
		t.Fatalf("disabled recorder recorded: %+v", s)
	}
	rec.SetEnabled(true)
	rec.Publish(Event{Kind: EvVerdict, Node: 1})
	rec.Publish(Event{Kind: EvVerdict, Node: 9}) // unknown node
	s := rec.Stats()
	if s.Writes != 1 || s.Retained != 1 || s.Unknown != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestRecorderFilter(t *testing.T) {
	rec := NewRecorder([]uint32{0, 1}, 64, true)
	fl := Tuple(0x0a000001, 0x0a000002, 1000, 80, 6)
	other := Tuple(0x0a000003, 0x0a000004, 2000, 443, 6)
	rec.Publish(Event{Kind: EvRedirect, Node: 0, Peer: 1, Flow: fl, TS: 10})
	rec.Publish(Event{Kind: EvAuthority, Node: 1, Peer: 0, Flow: fl, TS: 20})
	rec.Publish(Event{Kind: EvVerdict, Node: 1, Verdict: VDelivered, Flow: other, TS: 30})

	if got := len(rec.Events(Filter{})); got != 3 {
		t.Fatalf("unfiltered = %d", got)
	}
	if got := rec.Events(Filter{Flow: fl.Hash}); len(got) != 2 ||
		got[0].Kind != EvRedirect || got[1].Kind != EvAuthority {
		t.Fatalf("flow filter: %+v", got)
	}
	if got := rec.Events(Filter{Node: Node(1)}); len(got) != 2 {
		t.Fatalf("node filter: %+v", got)
	}
	if got := rec.Events(Filter{Kinds: []EventKind{EvVerdict}}); len(got) != 1 ||
		got[0].Verdict != VDelivered {
		t.Fatalf("kind filter: %+v", got)
	}
	if got := rec.Events(Filter{SinceTS: 10}); len(got) != 2 {
		t.Fatalf("since filter: %+v", got)
	}
	if got := rec.Events(Filter{Limit: 1}); len(got) != 1 || got[0].TS != 30 {
		t.Fatalf("limit must keep the newest: %+v", got)
	}
	if got := rec.Events(Filter{IPDst: 0x0a000002}); len(got) != 2 {
		t.Fatalf("ipdst filter: %+v", got)
	}
	if got := rec.Events(Filter{TPDst: 443}); len(got) != 1 {
		t.Fatalf("tpdst filter: %+v", got)
	}
}

func TestHashFlowStable(t *testing.T) {
	a := HashFlow(1, 2, 3, 4, 5)
	b := HashFlow(1, 2, 3, 4, 5)
	c := HashFlow(1, 2, 3, 4, 6)
	if a != b || a == c || a == 0 {
		t.Fatalf("hash: a=%d b=%d c=%d", a, b, c)
	}
	if HashFlow(0, 0, 0, 0, 0) == 0 {
		t.Fatal("zero tuple must not hash to the 0 sentinel")
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	ev := Event{
		Seq: 7, TS: 1234, Kind: EvRedirect, Node: 3, Peer: 5,
		Table: TablePartition, RuleID: 42,
		Flow: Tuple(0x0a000001, 0x0b000002, 1000, 80, 6),
	}
	j := ev.JSON()
	if j.Kind != "redirect" || j.Table != "partition" ||
		j.Src != "10.0.0.1:1000" || j.Dst != "11.0.0.2:80" {
		t.Fatalf("json shape: %+v", j)
	}
	if k, ok := KindFromString(j.Kind); !ok || k != EvRedirect {
		t.Fatalf("kind round trip: %v %v", k, ok)
	}
	if ip, ok := ParseIP("10.0.0.1"); !ok || ip != 0x0a000001 {
		t.Fatalf("ParseIP: %x %v", ip, ok)
	}
	if _, ok := ParseIP("10.0.0"); ok {
		t.Fatal("short IP must fail")
	}
}
