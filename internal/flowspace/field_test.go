package flowspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactFieldMatchesOnlyItself(t *testing.T) {
	f := ExactField(FTPDst, 80)
	if !f.Matches(80) {
		t.Fatal("exact field must match its value")
	}
	if f.Matches(81) {
		t.Fatal("exact field must not match other values")
	}
	if !f.IsExact(FTPDst.Width()) {
		t.Fatal("ExactField must pin all bits")
	}
}

func TestExactFieldTruncatesToWidth(t *testing.T) {
	f := ExactField(FVLAN, 0xFFFF) // VLAN is 12 bits
	if f.Value != 0xFFF {
		t.Fatalf("value not truncated: %x", f.Value)
	}
	if f.Mask != 0xFFF {
		t.Fatalf("mask not truncated: %x", f.Mask)
	}
}

func TestWildcardFieldMatchesEverything(t *testing.T) {
	f := WildcardField()
	for _, v := range []uint64{0, 1, 1 << 31, ^uint64(0)} {
		if !f.Matches(v) {
			t.Fatalf("wildcard must match %x", v)
		}
	}
	if !f.IsWildcard() {
		t.Fatal("IsWildcard must be true")
	}
}

func TestPrefixFieldSemantics(t *testing.T) {
	// 10.0.0.0/8
	f := PrefixField(FIPSrc, 0x0A000000, 8)
	if !f.Matches(0x0A123456) {
		t.Fatal("prefix must match addresses inside it")
	}
	if f.Matches(0x0B000000) {
		t.Fatal("prefix must not match addresses outside it")
	}
	if f.FreeBits(32) != 24 {
		t.Fatalf("want 24 free bits, got %d", f.FreeBits(32))
	}
}

func TestPrefixFieldFullLength(t *testing.T) {
	f := PrefixField(FIPSrc, 0x0A000001, 32)
	if !f.IsExact(32) {
		t.Fatal("/32 prefix must be exact")
	}
	// Over-long prefix lengths clamp to the width.
	g := PrefixField(FIPSrc, 0x0A000001, 99)
	if g != f {
		t.Fatal("prefix length must clamp to field width")
	}
}

func TestFieldContains(t *testing.T) {
	p8 := PrefixField(FIPSrc, 0x0A000000, 8)
	p16 := PrefixField(FIPSrc, 0x0A0A0000, 16)
	if !p8.Contains(p16) {
		t.Fatal("/8 must contain /16 inside it")
	}
	if p16.Contains(p8) {
		t.Fatal("/16 must not contain its /8")
	}
	if !WildcardField().Contains(p8) {
		t.Fatal("wildcard contains everything")
	}
	other := PrefixField(FIPSrc, 0x0B000000, 8)
	if p8.Contains(other) || other.Contains(p8) {
		t.Fatal("disjoint prefixes must not contain each other")
	}
}

func TestFieldIntersect(t *testing.T) {
	p8 := PrefixField(FIPSrc, 0x0A000000, 8)
	p16 := PrefixField(FIPSrc, 0x0A0A0000, 16)
	got, ok := p8.Intersect(p16)
	if !ok || got != p16 {
		t.Fatalf("intersection of nested prefixes must be the narrower one, got %+v ok=%v", got, ok)
	}
	disjoint := PrefixField(FIPSrc, 0x0B000000, 8)
	if _, ok := p8.Intersect(disjoint); ok {
		t.Fatal("disjoint prefixes must not intersect")
	}
}

// Property: a.Overlaps(b) iff some concrete value matches both. We verify
// one direction constructively via Intersect and sampling.
func TestFieldOverlapConsistentWithIntersect(t *testing.T) {
	check := func(av, am, bv, bm uint64) bool {
		w := uint(32)
		mask := widthMask(w)
		a := Field{Value: av & am & mask, Mask: am & mask}
		b := Field{Value: bv & bm & mask, Mask: bm & mask}
		inter, ok := a.Intersect(b)
		if ok != a.Overlaps(b) {
			return false
		}
		if ok {
			// Any value matching the intersection matches both.
			v := inter.Value // wildcard bits zero: still a member
			return a.Matches(v) && b.Matches(v)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Contains is a partial order consistent with Matches.
func TestFieldContainsImpliesMatchSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		w := uint(16)
		mask := widthMask(w)
		a := Field{Mask: rng.Uint64() & mask}
		a.Value = rng.Uint64() & a.Mask
		b := Field{Mask: rng.Uint64() & mask}
		b.Value = rng.Uint64() & b.Mask
		if !a.Contains(b) {
			continue
		}
		for j := 0; j < 64; j++ {
			v := (b.Value | (rng.Uint64() &^ b.Mask)) & mask
			if b.Matches(v) && !a.Matches(v) {
				t.Fatalf("a=%+v contains b=%+v but b-member %x not in a", a, b, v)
			}
		}
	}
}

func TestRangeToFieldsExactCover(t *testing.T) {
	cases := []struct{ lo, hi uint64 }{
		{0, 0}, {0, 65535}, {80, 80}, {1, 32766}, {1024, 2047},
		{1000, 2000}, {0, 1}, {65535, 65535}, {3, 7},
	}
	for _, c := range cases {
		fields := RangeToFields(c.lo, c.hi, 16)
		if len(fields) == 0 {
			t.Fatalf("[%d,%d]: no fields", c.lo, c.hi)
		}
		for v := uint64(0); v <= 65535; v++ {
			in := false
			for _, f := range fields {
				if f.Matches(v) {
					in = true
					break
				}
			}
			want := v >= c.lo && v <= c.hi
			if in != want {
				t.Fatalf("[%d,%d]: value %d membership=%v want %v", c.lo, c.hi, v, in, want)
			}
		}
	}
}

func TestRangeToFieldsKnownExpansionCost(t *testing.T) {
	// The ACL literature's worst-ish case: [1, 32766] over 16 bits expands
	// to 28 prefixes (14 up + 14 down).
	fields := RangeToFields(1, 32766, 16)
	if len(fields) != 28 {
		t.Fatalf("range [1,32766] must expand to 28 prefixes, got %d", len(fields))
	}
}

func TestRangeToFieldsEmptyAndClamped(t *testing.T) {
	if RangeToFields(5, 4, 16) != nil {
		t.Fatal("inverted range must yield nil")
	}
	fields := RangeToFields(65000, 1<<20, 16) // hi beyond width clamps
	for _, f := range fields {
		if f.Value > 65535 {
			t.Fatalf("field value exceeds width: %x", f.Value)
		}
	}
}

func TestFieldFormat(t *testing.T) {
	f := PrefixField(FVLAN, 0x800, 4)
	got := f.format(12)
	if got != "1000xxxxxxxx" {
		t.Fatalf("format = %q", got)
	}
	if WildcardField().format(12) != "*" {
		t.Fatal("wildcard must format as *")
	}
}

func TestFieldIDString(t *testing.T) {
	if FIPSrc.String() != "ip_src" {
		t.Fatalf("got %q", FIPSrc.String())
	}
	if FieldID(99).String() == "" {
		t.Fatal("out-of-range FieldID must still render")
	}
}
