package metrics

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestDistBasics(t *testing.T) {
	var d Dist
	if d.N() != 0 || d.Mean() != 0 || d.Percentile(50) != 0 {
		t.Fatal("empty dist must answer zeros")
	}
	for _, v := range []float64{3, 1, 2} {
		d.Add(v)
	}
	if d.N() != 3 || d.Sum() != 6 || d.Mean() != 2 {
		t.Fatalf("n=%d sum=%v mean=%v", d.N(), d.Sum(), d.Mean())
	}
	if d.Min() != 1 || d.Max() != 3 {
		t.Fatalf("min=%v max=%v", d.Min(), d.Max())
	}
}

func TestPercentileNearestRank(t *testing.T) {
	var d Dist
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	cases := map[float64]float64{1: 1, 50: 50, 90: 90, 99: 99, 100: 100, 0: 1}
	for p, want := range cases {
		if got := d.Percentile(p); got != want {
			t.Fatalf("p%v = %v want %v", p, got, want)
		}
	}
}

func TestPercentileAfterInterleavedAdds(t *testing.T) {
	var d Dist
	d.Add(5)
	if d.Percentile(50) != 5 {
		t.Fatal("median of one sample")
	}
	d.Add(1) // must re-sort
	if d.Min() != 1 {
		t.Fatal("adding after a query must invalidate sorting")
	}
}

func TestCDFMonotone(t *testing.T) {
	var d Dist
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 1000; i++ {
		d.Add(rng.ExpFloat64())
	}
	pts := d.CDF(Quantiles)
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] {
			t.Fatalf("CDF values must be nondecreasing: %v", pts)
		}
	}
	if pts[len(pts)-1][1] != 1.0 {
		t.Fatal("last quantile must be 1.0")
	}
}

func TestTableRendering(t *testing.T) {
	var tb Table
	tb.AddRow("name", "rules", "hit%")
	tb.AddRowf("campus", 12345, 97.25)
	tb.AddRowf("vpn", 900, 80.0)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected header + rule + 2 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("second line must be a rule: %q", lines[1])
	}
	if !strings.Contains(lines[2], "campus") || !strings.Contains(lines[2], "12345") {
		t.Fatalf("row content missing: %q", lines[2])
	}
	var empty Table
	if empty.String() != "" {
		t.Fatal("empty table must render empty")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		1000000: "1000000",
		123.456: "123.5",
		0.5:     "0.500",
		0.0001:  "0.0001",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Fatalf("FormatFloat(%v) = %q want %q", v, got, want)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(0.0000005); got != "0.5µs" {
		t.Fatalf("got %q", got)
	}
	if got := FormatDuration(0.0042); got != "4.20ms" {
		t.Fatalf("got %q", got)
	}
	if got := FormatDuration(2.5); got != "2.500s" {
		t.Fatalf("got %q", got)
	}
}

func TestSeries(t *testing.T) {
	s := Series{Name: "miss", XLabel: "cache", YLabel: "rate"}
	s.Add(1, 0.5)
	s.Add(2, 0.25)
	if len(s.Points()) != 2 {
		t.Fatal("points must accumulate")
	}
	out := s.String()
	if !strings.Contains(out, "# series miss") || !strings.Contains(out, "0.250") {
		t.Fatalf("series render:\n%s", out)
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "hits"}
	c.Inc(3)
	c.Inc(2)
	if c.Value != 5 {
		t.Fatalf("value = %d", c.Value)
	}
}

// TestDistConcurrentAddQuantile hammers a shared Dist with concurrent
// writers and quantile/CDF readers. Run under -race (the Makefile test
// target does) this fails if queries ever mutate shared state without
// holding the lock — the bug the old sort-in-place Percentile had.
func TestDistConcurrentAddQuantile(t *testing.T) {
	var d Dist
	d.Add(1) // first touch happens-before the goroutines below
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				d.Add(rng.Float64() * 100)
			}
		}(int64(w))
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if q := d.Quantile(0.99); q < 0 {
					t.Error("negative quantile")
					return
				}
				pts := d.CDF(Quantiles)
				for i := 1; i < len(pts); i++ {
					if pts[i][0] < pts[i-1][0] {
						t.Errorf("CDF non-monotone under concurrency: %v", pts)
						return
					}
				}
				d.Mean()
				d.Clone()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if n := d.N(); n != 1+4*2000 {
		t.Fatalf("lost samples: n=%d", n)
	}
}

func TestDistClone(t *testing.T) {
	var d Dist
	for _, v := range []float64{3, 1, 2} {
		d.Add(v)
	}
	c := d.Clone()
	// Querying the clone must not affect the original, and growing the
	// original must not grow the clone.
	if got := c.Percentile(50); got != 2 {
		t.Errorf("clone p50 = %v", got)
	}
	d.Add(10)
	if c.N() != 3 || d.N() != 4 {
		t.Errorf("clone shares storage: clone n=%d orig n=%d", c.N(), d.N())
	}
	if c.Sum() != 6 || d.Sum() != 16 {
		t.Errorf("sums: clone %v orig %v", c.Sum(), d.Sum())
	}
}
