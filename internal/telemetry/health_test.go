package telemetry

import (
	"strings"
	"testing"
)

// fakeCluster is a registry whose difane_* series the tests mutate
// directly, standing in for a live deployment between watchdog ticks.
type fakeCluster struct {
	reg *Registry

	cacheHits, authorityHits, partitionHits float64
	delivered, evictions, bfdTransitions    float64
	epochActiveSince                        float64
	authorityBySwitch                       map[string]float64
}

func newFakeCluster() *fakeCluster {
	f := &fakeCluster{reg: NewRegistry(), authorityBySwitch: map[string]float64{}}
	counter := func(name string, v *float64) {
		f.reg.RegisterFunc(name, "", TypeCounter, func() float64 { return *v })
	}
	counter("difane_switch_cache_hits_total", &f.cacheHits)
	counter("difane_switch_partition_hits_total", &f.partitionHits)
	counter("difane_delivered_total", &f.delivered)
	counter("difane_switch_cache_evictions_total", &f.evictions)
	counter("difane_bfd_transitions_total", &f.bfdTransitions)
	f.reg.RegisterFunc("difane_epoch_active_since_ns", "", TypeGauge,
		func() float64 { return f.epochActiveSince })
	// Authority hits are per-switch labeled points, like the real schema —
	// the imbalance rule diffs them by label. The unlabeled sum feeds the
	// miss-rate rule via Delta's point summation.
	f.reg.Register("difane_switch_authority_hits_total", "", TypeCounter, func() []Point {
		if len(f.authorityBySwitch) == 0 {
			return []Point{{Value: f.authorityHits}}
		}
		pts := make([]Point, 0, len(f.authorityBySwitch))
		for sw, v := range f.authorityBySwitch {
			pts = append(pts, Point{Labels: []Label{{Key: "switch", Value: sw}}, Value: v})
		}
		return pts
	})
	return f
}

func statusOf(t *testing.T, st []RuleStatus, name string) RuleStatus {
	t.Helper()
	for _, s := range st {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("rule %q not in %+v", name, st)
	return RuleStatus{}
}

func TestWatchdogFirstEvalIsBaselineOnly(t *testing.T) {
	f := newFakeCluster()
	w := NewWatchdog(f.reg, DefaultHealthRules(HealthConfig{}))
	st := w.EvalOnce(1_000_000_000)
	for _, s := range st {
		if s.Firing {
			t.Fatalf("rule %s fired on the baseline pass", s.Name)
		}
	}
	sum := w.Summary()
	if sum.Evals != 1 || sum.Firing != 0 || sum.Critical != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestMissRateBurnFiresAndClears(t *testing.T) {
	f := newFakeCluster()
	w := NewWatchdog(f.reg, DefaultHealthRules(HealthConfig{}))
	w.EvalOnce(1e9)

	// Window 1: redirects dominate (900 of 1000 classifications).
	f.cacheHits += 100
	f.partitionHits += 900
	st := w.EvalOnce(2e9)
	s := statusOf(t, st, "miss-rate-burn")
	if !s.Firing || s.Value < 0.89 || s.Value > 0.91 {
		t.Fatalf("miss-rate-burn = %+v, want firing at ~0.9", s)
	}
	if s.SinceNS != 2e9 {
		t.Fatalf("SinceNS = %d, want the firing eval's timestamp", s.SinceNS)
	}
	if s.Severity != SevWarn {
		t.Fatalf("severity = %q", s.Severity)
	}

	// Window 2: the cache absorbed the working set again.
	f.cacheHits += 1000
	f.partitionHits += 10
	s = statusOf(t, w.EvalOnce(3e9), "miss-rate-burn")
	if s.Firing || s.SinceNS != 0 {
		t.Fatalf("rule must clear on a healthy window: %+v", s)
	}
}

func TestMissRateFloorKeepsColdStartQuiet(t *testing.T) {
	f := newFakeCluster()
	w := NewWatchdog(f.reg, DefaultHealthRules(HealthConfig{}))
	w.EvalOnce(1e9)
	// 40 classifications, all redirects — under the 500 floor.
	f.partitionHits += 40
	if s := statusOf(t, w.EvalOnce(2e9), "miss-rate-burn"); s.Firing {
		t.Fatalf("fired below the classification floor: %+v", s)
	}
}

func TestRedirectImbalanceRule(t *testing.T) {
	f := newFakeCluster()
	for _, sw := range []string{"0", "1", "2", "3", "4"} {
		f.authorityBySwitch[sw] = 0
	}
	w := NewWatchdog(f.reg, DefaultHealthRules(HealthConfig{}))
	w.EvalOnce(1e9)

	// One authority takes 900 of 1000 redirects while four others take 25
	// each: 4.5x the active mean, above the 4x max.
	f.authorityBySwitch["2"] += 900
	for _, sw := range []string{"0", "1", "3", "4"} {
		f.authorityBySwitch[sw] += 25
	}
	s := statusOf(t, w.EvalOnce(2e9), "redirect-imbalance")
	if !s.Firing || s.Value != 4.5 {
		t.Fatalf("imbalance = %+v, want firing at 4.5x mean", s)
	}
	if !strings.Contains(s.Detail, "switch 2") {
		t.Fatalf("detail should name the hot switch: %q", s.Detail)
	}

	// Balanced load clears it.
	for sw := range f.authorityBySwitch {
		f.authorityBySwitch[sw] += 200
	}
	if s := statusOf(t, w.EvalOnce(3e9), "redirect-imbalance"); s.Firing {
		t.Fatalf("balanced window still firing: %+v", s)
	}
}

// TestRedirectImbalanceIgnoresStructuralZeros: every switch exports the
// authority-hits series, but only authorities ever increment it. The mean
// must span switches that served redirects, or a balanced 2-of-8
// authority cluster would idle at 4x and fire forever.
func TestRedirectImbalanceIgnoresStructuralZeros(t *testing.T) {
	f := newFakeCluster()
	for _, sw := range []string{"0", "1", "2", "3", "4", "5", "6", "7"} {
		f.authorityBySwitch[sw] = 0
	}
	w := NewWatchdog(f.reg, DefaultHealthRules(HealthConfig{}))
	w.EvalOnce(1e9)

	// Two authorities split the load almost evenly; six switches report 0.
	f.authorityBySwitch["2"] += 520
	f.authorityBySwitch["6"] += 480
	if s := statusOf(t, w.EvalOnce(2e9), "redirect-imbalance"); s.Firing {
		t.Fatalf("balanced 2-authority cluster fired: %+v", s)
	}

	// A single active switch is not comparable to anything: no verdict.
	f.authorityBySwitch["2"] += 1000
	if s := statusOf(t, w.EvalOnce(3e9), "redirect-imbalance"); s.Firing {
		t.Fatalf("lone active authority fired: %+v", s)
	}
}

func TestTcamPressureRule(t *testing.T) {
	f := newFakeCluster()
	w := NewWatchdog(f.reg, DefaultHealthRules(HealthConfig{}))
	w.EvalOnce(1e9)
	// 0.8 evictions per delivery: the cache is thrashing.
	f.delivered += 1000
	f.evictions += 800
	s := statusOf(t, w.EvalOnce(2e9), "tcam-pressure")
	if !s.Firing || s.Value != 0.8 {
		t.Fatalf("tcam-pressure = %+v", s)
	}
}

func TestBFDFlapIsCritical(t *testing.T) {
	f := newFakeCluster()
	w := NewWatchdog(f.reg, DefaultHealthRules(HealthConfig{}))
	w.EvalOnce(1e9)
	// 20 transitions over a 2-second window: 10/s against a 5/s budget.
	f.bfdTransitions += 20
	s := statusOf(t, w.EvalOnce(3e9), "bfd-flap")
	if !s.Firing || s.Value != 10 || s.Severity != SevCritical {
		t.Fatalf("bfd-flap = %+v", s)
	}
	sum := w.Summary()
	if sum.Firing != 1 || sum.Critical != 1 {
		t.Fatalf("summary = %+v, want 1 critical", sum)
	}
}

func TestConvergenceStallIsCritical(t *testing.T) {
	f := newFakeCluster()
	w := NewWatchdog(f.reg, DefaultHealthRules(HealthConfig{}))
	w.EvalOnce(1e9)
	// A policy update opened at t=1ns and never quiesced; by t=15s the
	// 10s budget is blown.
	f.epochActiveSince = 1
	s := statusOf(t, w.EvalOnce(15e9), "convergence-stall")
	if !s.Firing || s.Severity != SevCritical {
		t.Fatalf("convergence-stall = %+v", s)
	}
	// Quiescence (gauge back to 0) clears it.
	f.epochActiveSince = 0
	if s := statusOf(t, w.EvalOnce(16e9), "convergence-stall"); s.Firing {
		t.Fatalf("stall rule must clear at quiescence: %+v", s)
	}
}

func TestWatchdogViewAndMetrics(t *testing.T) {
	f := newFakeCluster()
	w := NewWatchdog(f.reg, DefaultHealthRules(HealthConfig{}))
	w.RegisterMetrics(f.reg)
	w.EvalOnce(1e9)
	f.bfdTransitions += 100
	w.EvalOnce(2e9)

	v := w.View(3e9)
	if v.Healthy || v.Evals != 2 {
		t.Fatalf("view = %+v, want unhealthy after the flap", v)
	}

	var b strings.Builder
	if err := f.reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`difane_health_firing{rule="bfd-flap",severity="critical"} 1`,
		`difane_health_firing{rule="tcam-pressure",severity="warn"} 0`,
		"difane_health_evals_total 2",
		"difane_health_firing_count 1",
		"difane_health_critical_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in scrape:\n%s", want, out)
		}
	}
}
