package difane_test

import (
	"strings"
	"testing"

	"difane"
)

// TestPublicAPIQuickstart walks the README quickstart path end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	spec := difane.CampusNetwork(1, difane.ScaleTest)
	auths := difane.PlaceAuthorities(spec.Graph, 3)
	if len(auths) != 3 {
		t.Fatalf("authorities = %v", auths)
	}
	net, err := difane.New(spec.Graph, auths, spec.Policy, difane.Config{
		Partition: difane.PartitionConfig{MaxRulesPerPartition: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	flows := difane.GenerateTraffic(spec, difane.TrafficConfig{
		Flows: 2000, Rate: 2000, Seed: 2,
	})
	difane.RunTrace(net, flows, 30)

	delivered := net.M.Delivered + net.M.Drops.Policy
	if delivered == 0 {
		t.Fatal("no traffic handled")
	}
	if net.M.Drops.Hole != 0 || net.M.Drops.Unreachable != 0 {
		t.Fatalf("unexpected losses: %+v", net.M.Drops)
	}
	if net.M.FirstPacketDelay.N() == 0 {
		t.Fatal("no first-packet delays recorded")
	}
}

// TestBaselineComparableInterface drives the same trace through DIFANE and
// the baseline via the shared injector interface.
func TestBaselineComparableInterface(t *testing.T) {
	spec := difane.VPNNetwork(3, difane.ScaleTest)
	flows := difane.GenerateTraffic(spec, difane.TrafficConfig{Flows: 500, Rate: 1000, Seed: 4})

	auths := difane.PlaceAuthorities(spec.Graph, 2)
	dn, err := difane.New(spec.Graph, auths, spec.Policy, difane.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bn, err := difane.NewBaseline(spec.Graph, spec.Policy, difane.BaselineConfig{
		ControllerNode: uint32(spec.Graph.Nodes()[0]),
		SetupOverhead:  0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []difane.Deployment{dn, bn} {
		difane.RunTrace(n, flows, 30)
	}
	// Both must complete the same setups; the baseline must be slower on
	// first packets (it pays the controller round trip).
	if dn.M.SetupsCompleted == 0 || bn.M.SetupsCompleted == 0 {
		t.Fatal("both systems must complete setups")
	}
	if dn.M.FirstPacketDelay.Mean() >= bn.M.FirstPacketDelay.Mean() {
		t.Fatalf("DIFANE first-packet delay (%v) must beat the baseline (%v)",
			dn.M.FirstPacketDelay.Mean(), bn.M.FirstPacketDelay.Mean())
	}
}

// TestPartitioningAPI exercises the partitioner through the facade.
func TestPartitioningAPI(t *testing.T) {
	policy := difane.ClassBenchLike(difane.ACLConfig{
		Rules: 300, MaxDepth: 6, Egresses: []uint32{1}, Seed: 5,
	})
	parts := difane.BuildPartitions(policy, difane.PartitionConfig{MaxRulesPerPartition: 50})
	if len(parts) < 2 {
		t.Fatalf("partitions = %d", len(parts))
	}
	a, err := difane.Assign(parts, []uint32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Primary) != len(parts) {
		t.Fatal("assignment size mismatch")
	}
}

// TestEvaluateFacade checks the rule evaluation helper.
func TestEvaluateFacade(t *testing.T) {
	rules := []difane.Rule{
		{ID: 1, Priority: 10,
			Match:  difane.MatchAll().WithExact(difane.FTPDst, 80),
			Action: difane.Action{Kind: difane.ActForward, Arg: 2}},
		{ID: 2, Priority: 0, Match: difane.MatchAll(),
			Action: difane.Action{Kind: difane.ActDrop}},
	}
	var k difane.Key
	k[difane.FTPDst] = 80
	r, ok := difane.Evaluate(rules, k)
	if !ok || r.ID != 1 {
		t.Fatalf("evaluate = %v ok=%v", r, ok)
	}
}

// TestTraceFacadeRoundTrip archives and replays a trace via the facade.
func TestTraceFacadeRoundTrip(t *testing.T) {
	spec := difane.VPNNetwork(5, difane.ScaleTest)
	flows := difane.GenerateTraffic(spec, difane.TrafficConfig{Flows: 50, Seed: 6})
	var buf strings.Builder
	if err := difane.WriteTrace(&buf, flows); err != nil {
		t.Fatal(err)
	}
	again, err := difane.ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(flows) {
		t.Fatalf("round trip %d != %d", len(again), len(flows))
	}
}

// TestPolicyFacade parses, compacts, and writes a policy via the facade.
func TestPolicyFacade(t *testing.T) {
	rules, err := difane.ParsePolicy(strings.NewReader(`
rule 1 prio 10 ip_src=10.0.0.0/8 -> forward(1)
rule 2 prio 5 ip_src=10.1.0.0/16 -> drop
rule 3 prio 0 -> drop
`))
	if err != nil {
		t.Fatal(err)
	}
	kept, removed := difane.CompactPolicy(rules)
	if len(removed) != 1 || removed[0] != 2 {
		t.Fatalf("rule 2 is shadowed by rule 1 and must be removed: %v", removed)
	}
	var buf strings.Builder
	if err := difane.WritePolicy(&buf, kept); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rule 1") {
		t.Fatalf("written policy:\n%s", buf.String())
	}
}

// TestEvictionChoiceFacade drives a capacity-limited cache with LFU.
func TestEvictionChoiceFacade(t *testing.T) {
	g := difane.LinearTopology(3, 0.001)
	policy := []difane.Rule{{
		ID: 1, Priority: 1, Match: difane.MatchAll(),
		Action: difane.Action{Kind: difane.ActForward, Arg: 2},
	}}
	n, err := difane.New(g, []uint32{1}, policy, difane.Config{
		Strategy:      difane.StrategyExact,
		CacheCapacity: 2,
		CacheEviction: difane.EvictLFU,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var k difane.Key
		k[difane.FIPSrc] = uint64(i)
		n.InjectPacket(float64(i)*0.1, 0, k, 100, 0)
	}
	n.Run(5)
	if n.CacheEntries() > 2 {
		t.Fatalf("cache exceeded capacity: %d", n.CacheEntries())
	}
	if n.M.Delivered != 10 {
		t.Fatalf("delivered = %d", n.M.Delivered)
	}
}

// TestControllerFacade exercises dynamics through the facade.
func TestControllerFacade(t *testing.T) {
	g := difane.LinearTopology(4, 0.001)
	policy := []difane.Rule{{
		ID: 1, Priority: 1, Match: difane.MatchAll(),
		Action: difane.Action{Kind: difane.ActForward, Arg: 3},
	}}
	n, err := difane.New(g, []uint32{1}, policy, difane.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := difane.NewController(n)
	if _, err := c.UpdatePolicy(policy); err != nil {
		t.Fatal(err)
	}
	n.Run(1)
	if c.PolicyVersion != 1 {
		t.Fatalf("policy version = %d", c.PolicyVersion)
	}
}

// TestDeploymentInterfaceAllBackends proves every backend satisfies the
// Deployment interface and can be driven by the same trace loop.
func TestDeploymentInterfaceAllBackends(t *testing.T) {
	spec := difane.CampusNetwork(1, difane.ScaleTest)
	auths := difane.PlaceAuthorities(spec.Graph, 2)
	flows := difane.GenerateTraffic(spec, difane.TrafficConfig{
		Flows: 200, Rate: 2000, Seed: 3,
	})

	deployments := map[string]func() (difane.Deployment, error){
		"sim": func() (difane.Deployment, error) {
			return difane.New(spec.Graph, auths, spec.Policy, difane.Config{})
		},
		"baseline": func() (difane.Deployment, error) {
			return difane.NewBaseline(spec.Graph, spec.Policy, difane.BaselineConfig{
				ControllerNode: auths[0], ControllerRate: 50000,
			})
		},
		"wire": func() (difane.Deployment, error) {
			var ids []uint32
			for _, id := range spec.Graph.Nodes() {
				ids = append(ids, uint32(id))
			}
			return difane.NewWireDeployment(difane.ClusterConfig{
				Switches: ids, Authorities: auths, Policy: spec.Policy,
				QueueDepth: 16384,
			})
		},
	}
	for name, build := range deployments {
		t.Run(name, func(t *testing.T) {
			dep, err := build()
			if err != nil {
				t.Fatal(err)
			}
			difane.RunTrace(dep, flows, 30)
			m := dep.Measurements()
			if m.Delivered+m.Drops.Policy == 0 {
				t.Fatal("no traffic handled")
			}
			if err := dep.Close(); err != nil {
				t.Fatal(err)
			}
			if err := dep.Close(); err != nil {
				t.Fatalf("Close not idempotent: %v", err)
			}
		})
	}

}
