package wire

import (
	"time"

	"difane/internal/bfd"
	"difane/internal/proto"
	"difane/internal/telemetry"
)

// BFD-grade failure detection. Every switch carries two async sessions
// from internal/bfd: bfdCtrl is the controller's view of the switch (its
// detect expiry is the death verdict that triggers failover) and bfdSw is
// the switch's view of the controller (its expiry flips the
// controller-unreachable verdict that starts outage buffering). One
// cluster goroutine (bfdLoop) ticks every session at half the configured
// interval; transmissions are queued to a per-node writer goroutine so a
// wedged control connection can only stall its own switch's sessions.
// Packets travel as proto.BFDControl frames over the existing control
// channels. The heartbeat detector keeps running as a coarse fallback —
// BFD receive traffic stamps its clocks, so it stays quiet while BFD is
// healthy and takes over seamlessly when BFD is disabled.

// bfdSend is one queued BFD transmission; toSwitch selects the direction.
type bfdSend struct {
	msg      *proto.BFDControl
	toSwitch bool
}

// initNodeBFD builds a node's session pair (no-op when BFD is disabled).
// Discriminators are derived from the node's dense slot: controller-side
// sessions are odd, switch-side even.
func (c *Cluster) initNodeBFD(n *node) {
	if c.cfg.BFD.Disable {
		return
	}
	b := c.cfg.BFD
	cfg := bfd.Config{
		DesiredMinTx: b.Interval,
		DetectMult:   b.DetectMult,
		Demand:       b.Demand,
		PollInterval: b.PollInterval,
	}
	ctrlCfg := cfg
	ctrlCfg.LocalDiscr = uint32(2*n.slot + 1)
	swCfg := cfg
	swCfg.LocalDiscr = uint32(2*n.slot + 2)
	n.bfdCtrl = bfd.New(ctrlCfg, func(old, st bfd.State) { c.onCtrlSessionState(n, old, st) })
	n.bfdSw = bfd.New(swCfg, func(old, st bfd.State) { c.onSwSessionState(n, old, st) })
	n.bfdQ = make(chan bfdSend, 16)
}

// onCtrlSessionState traces the controller-side session's transitions.
// The death verdict itself is taken in bfdLoop from Tick's expiry result
// (a detect timeout), not from every Down transition — an administrative
// Reset or a peer restarting must not read as a detected failure.
func (c *Cluster) onCtrlSessionState(n *node, old, st bfd.State) {
	if !c.rec.Enabled() {
		return
	}
	switch {
	case st == bfd.StateUp:
		c.rec.Publish(telemetry.Event{Kind: telemetry.EvBFDUp, Node: n.id,
			Peer: n.bfdCtrl.Info().RemoteDiscr})
	case old == bfd.StateUp:
		c.rec.Publish(telemetry.Event{Kind: telemetry.EvBFDDown, Node: n.id,
			Peer: n.bfdCtrl.Info().RemoteDiscr})
	}
}

// onSwSessionState reacts to the switch-side session: when the session to
// the controller (re-)establishes, the outage is over — drain anything
// the switch buffered while it was unreachable.
func (c *Cluster) onSwSessionState(n *node, old, st bfd.State) {
	if st == bfd.StateUp && len(n.outbox) > 0 {
		go c.drainOutbox(n)
	}
}

// bfdLoop ticks every session at half the transmit interval (so jittered
// deadlines are met within half an interval of slack).
func (c *Cluster) bfdLoop() {
	defer c.wg.Done()
	tick := c.cfg.BFD.Interval / 2
	if tick < 200*time.Microsecond {
		tick = 200 * time.Microsecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	prev := time.Now()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-ticker.C:
		}
		now := time.Now()
		// Stall compensation: all sessions transmit from this goroutine, so
		// any oversleep beyond the tick period is locally-caused silence for
		// every one of them — credit it back to the detection clocks rather
		// than let a scheduler stall read as a correlated cluster-wide
		// failure. A genuinely silent peer still accrues one tick of silence
		// per loop pass, so real detection converges regardless of load.
		if credit := now.Sub(prev) - tick; credit > 0 {
			for _, n := range c.nodes {
				n.bfdSw.Credit(credit, now)
				n.bfdCtrl.Credit(credit, now)
			}
		}
		prev = now
		ctrlUp := !c.ctrlDown.Load()
		for _, n := range c.nodes {
			if !n.killed.Load() {
				// Switch side: the switch watches the controller. It keeps
				// ticking through a controller outage — that expiry IS the
				// switch's outage detection.
				if pkt, _ := n.bfdSw.Tick(now); pkt != nil {
					c.queueBFD(n, pkt, false)
				}
			}
			if !ctrlUp {
				// Simulated controller crash: the controller's sessions
				// neither transmit nor judge.
				continue
			}
			pkt, expired := n.bfdCtrl.Tick(now)
			if pkt != nil {
				c.queueBFD(n, pkt, true)
			}
			if expired {
				c.markDead(n)
			}
		}
	}
}

// queueBFD hands a packet to the node's writer, dropping on overflow
// (detection tolerates lost control packets by design).
func (c *Cluster) queueBFD(n *node, p *bfd.Packet, toSwitch bool) {
	select {
	case n.bfdQ <- bfdSend{msg: bfdToProto(n.id, p), toSwitch: toSwitch}:
	default:
	}
}

// bfdWriter serializes one node's BFD transmissions in both directions,
// so injected control delays or a wedged connection stall only this
// switch's sessions.
func (c *Cluster) bfdWriter(n *node) {
	defer c.wg.Done()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-n.done:
			return
		case s := <-n.bfdQ:
			if s.toSwitch {
				_ = c.writeToSwitch(n, s.msg)
			} else {
				_ = c.writeControl(n, s.msg, true)
			}
		}
	}
}

// handleBFDAtSwitch processes a controller→switch BFD packet on the
// switch side. Receipt is also evidence the controller is alive, so it
// stamps the heartbeat fallback's probe clock.
func (c *Cluster) handleBFDAtSwitch(n *node, m *proto.BFDControl) {
	now := time.Now()
	n.lastProbe.Store(now.UnixNano())
	if n.bfdSw == nil {
		return
	}
	if reply := n.bfdSw.Handle(protoToBFD(m), now); reply != nil {
		c.queueBFD(n, reply, false)
	}
	if len(n.outbox) > 0 && !c.controllerUnreachable(n) {
		go c.drainOutbox(n)
	}
}

// handleBFDAtController processes a switch→controller BFD packet on the
// controller side, stamping the heartbeat fallback's echo clock.
func (c *Cluster) handleBFDAtController(n *node, m *proto.BFDControl) {
	now := time.Now()
	n.lastBeat.Store(now.UnixNano())
	if n.bfdCtrl == nil {
		return
	}
	if reply := n.bfdCtrl.Handle(protoToBFD(m), now); reply != nil {
		c.queueBFD(n, reply, true)
	}
}

// resetBFD quietly returns every session to Down — used around controller
// failover, where the old sessions' silence is administrative, not a
// detected failure. The next loop ticks re-run the handshakes.
func (c *Cluster) resetBFD() {
	if c.cfg.BFD.Disable {
		return
	}
	now := time.Now()
	for _, n := range c.nodes {
		n.bfdCtrl.Reset(now)
		n.bfdSw.Reset(now)
	}
}

// bfdToProto converts a session packet to its wire form.
func bfdToProto(nodeID uint32, p *bfd.Packet) *proto.BFDControl {
	m := &proto.BFDControl{
		Node:          nodeID,
		State:         uint8(p.State),
		MyDiscr:       p.MyDiscr,
		YourDiscr:     p.YourDiscr,
		DesiredMinTx:  uint64(p.DesiredMinTx),
		RequiredMinRx: uint64(p.RequiredMinRx),
		DetectMult:    p.DetectMult,
	}
	if p.Poll {
		m.Flags |= proto.BFDPoll
	}
	if p.Final {
		m.Flags |= proto.BFDFinal
	}
	if p.Demand {
		m.Flags |= proto.BFDDemand
	}
	return m
}

// protoToBFD converts a wire frame back to a session packet.
func protoToBFD(m *proto.BFDControl) bfd.Packet {
	return bfd.Packet{
		State:         bfd.State(m.State),
		Poll:          m.Flags&proto.BFDPoll != 0,
		Final:         m.Flags&proto.BFDFinal != 0,
		Demand:        m.Flags&proto.BFDDemand != 0,
		MyDiscr:       m.MyDiscr,
		YourDiscr:     m.YourDiscr,
		DesiredMinTx:  time.Duration(m.DesiredMinTx),
		RequiredMinRx: time.Duration(m.RequiredMinRx),
		DetectMult:    m.DetectMult,
	}
}

// BFDSessions reports the controller-side BFD session for every switch
// (nil map when BFD is disabled) — the ops surface difanectl ha renders.
func (c *Cluster) BFDSessions() map[uint32]bfd.Info {
	if c.cfg.BFD.Disable {
		return nil
	}
	out := make(map[uint32]bfd.Info, len(c.nodes))
	for _, n := range c.nodes {
		out[n.id] = n.bfdCtrl.Info()
	}
	return out
}
