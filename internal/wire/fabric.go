package wire

// The batched TCP data fabric: an optional carrier (cfg.Fabric.UseTCP)
// that moves inter-switch data frames over real loopback-TCP connections
// instead of direct ring handoff. Each (src, dst) switch pair lazily dials
// one connection; the sender appends a whole burst of length-prefixed frame
// records to a batch buffer under one lock, and the buffer flushes when it
// reaches FlushBytes or when the FlushInterval timer fires, so a redirect
// burst or a tunneled delivery stream costs one syscall per batch instead
// of one per frame. The receive side parses records back into dataFrames —
// allocation-free via DecodeWireEncap — and feeds the destination switch's
// per-producer ring in bursts, with the same backpressure accounting as the
// direct path.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"difane/internal/packet"
)

// fabricRecHdr is the per-record header: payload length (4B), injection
// wall-clock nanos (8B), packet size (4B), detour flag (1B), trace ID (8B).
const fabricRecHdr = 25

// tcpFabric is the cluster-wide data fabric: one loopback listener, lazily
// dialed per-pair connections, and an in-flight frame count that keeps the
// cluster's drain logic honest while frames sit in socket buffers.
type tcpFabric struct {
	c    *Cluster
	cfg  FabricConfig
	ln   net.Listener
	addr string

	mu    sync.Mutex
	conns map[uint64]*fabricConn

	// inflight counts frames accepted by send() and not yet enqueued at
	// (or dropped by) the receive side. drained() treats a non-zero count
	// like a non-empty data queue.
	inflight atomic.Int64

	done   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
}

// fabricConn is one directed src→dst connection with its batch buffer and
// dedicated writer goroutine. Batching is self-adaptive: the first frame
// into an empty buffer kicks the writer, and frames arriving while a write
// is in flight accumulate into the next batch — light load gets prompt
// single-frame writes, heavy load gets large coalesced ones, and no frame
// waits on a timer in the common case. The FlushInterval ticker is only a
// safety net against a lost wakeup.
type fabricConn struct {
	f    *tcpFabric
	src  *node
	conn net.Conn

	// mu guards buf/recs/err; the writer swaps the buffer out under it and
	// writes outside it, so senders never block on the socket.
	mu    sync.Mutex
	buf   []byte
	spare []byte
	recs  int
	err   error

	// kick wakes the writer; capacity 1 coalesces bursts of wakeups.
	kick chan struct{}
}

func newTCPFabric(c *Cluster, cfg FabricConfig) (*tcpFabric, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("wire: data fabric listen: %w", err)
	}
	f := &tcpFabric{
		c:     c,
		cfg:   cfg,
		ln:    ln,
		addr:  ln.Addr().String(),
		conns: make(map[uint64]*fabricConn),
		done:  make(chan struct{}),
	}
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

func (f *tcpFabric) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return
		}
		f.wg.Add(1)
		go f.serve(conn)
	}
}

// sendBurst batches a whole burst toward dst under one buffer lock and one
// writer wakeup. The packets are encoded straight into the connection's
// batch buffer — no per-frame allocation, no per-frame syscall, no
// per-frame lock.
func (f *tcpFabric) sendBurst(src, dst *node, frames []dataFrame) {
	fc, err := f.conn(src, dst)
	if err == nil && fc.enqueueBurst(frames) {
		return
	}
	for range frames {
		f.c.drop(src.stats, dropUnreachable)
	}
}

// conn returns (dialing if needed) the src→dst connection.
func (f *tcpFabric) conn(src, dst *node) (*fabricConn, error) {
	key := uint64(src.id)<<32 | uint64(dst.id)
	f.mu.Lock()
	defer f.mu.Unlock()
	if fc, ok := f.conns[key]; ok {
		return fc, nil
	}
	if f.closed.Load() {
		return nil, fmt.Errorf("wire: data fabric closed")
	}
	conn, err := net.Dial("tcp", f.addr)
	if err != nil {
		return nil, err
	}
	var hello [8]byte
	binary.BigEndian.PutUint32(hello[0:4], src.id)
	binary.BigEndian.PutUint32(hello[4:8], dst.id)
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	fc := &fabricConn{f: f, src: src, conn: conn, kick: make(chan struct{}, 1)}
	f.conns[key] = fc
	f.wg.Add(1)
	go fc.writeLoop()
	return fc, nil
}

// enqueueBurst appends the burst's frame records to the batch and wakes the
// writer once. Returns false if the connection is broken.
func (fc *fabricConn) enqueueBurst(frames []dataFrame) bool {
	fc.mu.Lock()
	if fc.err != nil {
		fc.mu.Unlock()
		return false
	}
	for i := range frames {
		frame := &frames[i]
		at := len(fc.buf)
		var h [fabricRecHdr]byte
		// The inject stamp is monotonic nanos on the cluster's time base;
		// sender and receiver share a process, so it round-trips exactly.
		binary.BigEndian.PutUint64(h[4:12], uint64(frame.injected))
		binary.BigEndian.PutUint32(h[12:16], uint32(frame.pkt.Size))
		if frame.detour {
			h[16] = 1
		}
		binary.BigEndian.PutUint64(h[17:25], frame.trace)
		fc.buf = append(fc.buf, h[:]...)
		var e *packet.Encap
		if frame.hasEncap {
			e = &frame.encap
		}
		fc.buf = frame.pkt.AppendWireEncap(fc.buf, e)
		binary.BigEndian.PutUint32(fc.buf[at:at+4], uint32(len(fc.buf)-at-fabricRecHdr))
	}
	fc.recs += len(frames)
	fc.f.inflight.Add(int64(len(frames)))
	fc.mu.Unlock()
	select {
	case fc.kick <- struct{}{}:
	default:
	}
	return true
}

// writeLoop is the connection's writer: woken by the first frame of a
// batch, it swaps the buffer out and writes it in one syscall, looping
// while senders keep it busy. The FlushInterval ticker is a safety net,
// and FlushBytes only sizes the retained buffer (larger batches shrink
// back so a burst doesn't pin its high-water mark forever).
func (fc *fabricConn) writeLoop() {
	defer fc.f.wg.Done()
	t := time.NewTicker(fc.f.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-fc.f.done:
			fc.flush()
			return
		case <-fc.kick:
			fc.flush()
		case <-t.C:
			fc.flush()
		}
	}
}

// flush swaps the batch out under the lock, writes it outside the lock,
// and repeats until the buffer stays empty. A failed write kills the
// connection: its batched frames are accounted as unreachable so the
// accounting identity (injected = delivered + drops) holds.
func (fc *fabricConn) flush() {
	for {
		fc.mu.Lock()
		if fc.err != nil || len(fc.buf) == 0 {
			fc.mu.Unlock()
			return
		}
		out, recs := fc.buf, fc.recs
		if fc.spare == nil || cap(fc.spare) > fc.f.cfg.FlushBytes {
			fc.spare = make([]byte, 0, fc.f.cfg.FlushBytes)
		}
		fc.buf, fc.spare = fc.spare[:0], nil
		fc.recs = 0
		fc.mu.Unlock()

		_, err := fc.conn.Write(out)

		fc.mu.Lock()
		if cap(out) <= fc.f.cfg.FlushBytes {
			fc.spare = out[:0]
		}
		if err != nil && fc.err == nil {
			fc.err = err
			// Frames already batched (recs just written, plus anything
			// senders added meanwhile) are lost.
			recs += fc.recs
			fc.buf = fc.buf[:0]
			fc.recs = 0
			fc.f.inflight.Add(int64(-recs))
			for i := 0; i < recs; i++ {
				fc.f.c.drop(fc.src.stats, dropUnreachable)
			}
		}
		fc.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// serve is the receive side of one connection: read the hello naming the
// pair, then parse each record into a dataFrame — this is the network
// boundary where bytes become a parsed packet again, allocation-free via
// DecodeWireEncap — and feed the destination switch's per-producer ring in
// bursts: a burst flushes when it fills or when the reader is about to
// block, so back-to-back records on the socket become one ring push and one
// wakeup. This goroutine is the sole producer of dst.in[src.slot] (fabric
// mode never pushes peer rings directly), preserving the SPSC discipline.
func (f *tcpFabric) serve(conn net.Conn) {
	defer f.wg.Done()
	defer conn.Close()
	var hello [8]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	src := f.c.switches[binary.BigEndian.Uint32(hello[0:4])]
	dst := f.c.switches[binary.BigEndian.Uint32(hello[4:8])]
	if src == nil || dst == nil {
		return
	}
	ring := dst.ring(src.slot)
	br := bufio.NewReaderSize(conn, 64<<10)
	burst := make([]dataFrame, 0, f.cfg.Burst)
	var rec [fabricRecHdr]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			f.deliverBurst(src, dst, ring, burst)
			return
		}
		plen := int(binary.BigEndian.Uint32(rec[0:4]))
		if cap(payload) < plen {
			payload = make([]byte, plen)
		} else {
			payload = payload[:plen]
		}
		if _, err := io.ReadFull(br, payload); err != nil {
			f.deliverBurst(src, dst, ring, burst)
			return
		}
		frame := dataFrame{
			injected: int64(binary.BigEndian.Uint64(rec[4:12])),
			detour:   rec[16] == 1,
			trace:    binary.BigEndian.Uint64(rec[17:25]),
		}
		_, hasEncap, decErr := frame.pkt.DecodeWireEncap(payload, &frame.encap)
		frame.hasEncap = hasEncap
		frame.pkt.Size = int(binary.BigEndian.Uint32(rec[12:16]))
		if decErr != nil {
			f.c.drop(src.stats, dropUnreachable)
			f.inflight.Add(-1)
			continue
		}
		burst = append(burst, frame)
		if len(burst) == cap(burst) || br.Buffered() < fabricRecHdr {
			f.deliverBurst(src, dst, ring, burst)
			burst = burst[:0]
		}
	}
}

// deliverBurst pushes a received burst onto the destination's ring with one
// push and one wakeup, with the same overflow accounting as direct handoff.
func (f *tcpFabric) deliverBurst(src, dst *node, ring *frameRing, burst []dataFrame) {
	if len(burst) == 0 {
		return
	}
	if dst.killed.Load() {
		// Same reasoning as the direct path: a killed switch's rings would
		// swallow the frames forever.
		for range burst {
			f.c.drop(src.stats, dropUnreachable)
		}
	} else {
		pushed := ring.pushBurst(burst)
		if pushed > 0 {
			dst.noteQueueDepth(int64(ring.len()))
			dst.wake()
		}
		for i := pushed; i < len(burst); i++ {
			f.c.drop(src.stats, dropQueue)
		}
	}
	f.inflight.Add(int64(-len(burst)))
}

// pending returns frames in flight inside the fabric (batched or in socket
// buffers, not yet enqueued at the destination).
func (f *tcpFabric) pending() int64 { return f.inflight.Load() }

// close tears the fabric down: final flushes fire, the listener and every
// connection close, and all fabric goroutines exit.
func (f *tcpFabric) close() {
	if !f.closed.CompareAndSwap(false, true) {
		return
	}
	close(f.done)
	f.ln.Close()
	f.mu.Lock()
	conns := make([]*fabricConn, 0, len(f.conns))
	for _, fc := range f.conns {
		conns = append(conns, fc)
	}
	f.mu.Unlock()
	// Give each connection a final flush before closing the sockets out
	// from under the readers (the writers also flush on done; flush is
	// idempotent).
	for _, fc := range conns {
		fc.flush()
	}
	// Brief grace so receive sides drain what was just flushed.
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) && f.inflight.Load() > 0 {
		time.Sleep(time.Millisecond)
	}
	for _, fc := range conns {
		fc.conn.Close()
	}
	f.wg.Wait()
}
