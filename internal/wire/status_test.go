package wire

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"difane/internal/core"
)

func TestStatusSnapshot(t *testing.T) {
	c := newCluster(t, core.StrategyCover)
	c.Inject(0, httpHeader(1), 100)
	awaitDelivery(t, c)
	st := c.Status()
	if len(st.Switches) != 5 {
		t.Fatalf("switches = %d", len(st.Switches))
	}
	// Sorted by ID, partition rules everywhere, the authority hosts rules.
	var sawAuthorityRules, sawPartitionHit bool
	for i, ss := range st.Switches {
		if i > 0 && ss.ID <= st.Switches[i-1].ID {
			t.Fatal("status must be ID-sorted")
		}
		if ss.PartitionRules == 0 {
			t.Fatalf("switch %d has no partition rules", ss.ID)
		}
		if ss.AuthorityRules > 0 {
			sawAuthorityRules = true
		}
		if ss.PartitionHits > 0 {
			sawPartitionHit = true
		}
	}
	if !sawAuthorityRules || !sawPartitionHit {
		t.Fatalf("status missing activity: %+v", st)
	}
}

func TestStatusHandlerServesJSON(t *testing.T) {
	c := newCluster(t, core.StrategyCover)
	c.Inject(0, httpHeader(1), 100)
	awaitDelivery(t, c)
	// Let the cache install land so the snapshot is interesting.
	deadline := time.Now().Add(5 * time.Second)
	for c.CacheLen(0) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	srv := httptest.NewServer(c.StatusHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Switches) != 5 {
		t.Fatalf("decoded switches = %d", len(st.Switches))
	}
	found := false
	for _, ss := range st.Switches {
		if ss.ID == 0 && ss.CacheEntries > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ingress cache entry must be visible: %+v", st)
	}

	// Non-GET is rejected.
	req, _ := http.NewRequest(http.MethodPost, srv.URL, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", resp2.StatusCode)
	}
}
