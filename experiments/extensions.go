package experiments

import (
	"fmt"
	"strings"

	"difane/internal/baseline"
	"difane/internal/core"
	"difane/internal/metrics"
	"difane/internal/proto"
	"difane/internal/subscriber"
	"difane/internal/workload"
)

// --- F10: cache-timeout sensitivity --------------------------------------------

// TimeoutPoint is one idle-timeout sample.
type TimeoutPoint struct {
	IdleTimeout float64
	MissRate    float64
	// ResidentEntries is the cache footprint at the end of the run.
	ResidentEntries int
}

// TimeoutResult is the F10 sweep.
type TimeoutResult struct{ Points []TimeoutPoint }

// FigCacheTimeout sweeps the idle timeout on generated cache rules: short
// timeouts keep switch tables small but re-redirect recurring traffic;
// long timeouts pin state. The paper leaves the timeout as the knob
// trading rule-table occupancy against miss rate — this measures that
// trade on a Zipf trace.
func FigCacheTimeout(o Options) *TimeoutResult {
	spec := workload.CampusNetwork(o.Seed, o.Scale)
	flows := workload.GenerateTraffic(spec, workload.TrafficConfig{
		Flows: scaleInt(o, 20000), Rate: 500, // long-lived run: timeouts matter
		Population: scaleInt(o, 5000), ZipfAlpha: 1.2,
		PacketsMean: 3, Seed: o.Seed + 50,
	})
	timeouts := []float64{0.5, 2, 10, 60, 0 /* never */}
	res := &TimeoutResult{}
	for _, idle := range timeouts {
		auths := core.PlaceAuthorities(spec.Graph, 2)
		dn, err := core.NewNetwork(spec.Graph, auths, spec.Policy, core.NetworkConfig{
			Strategy:  core.StrategyCover,
			CacheIdle: idle,
			Partition: core.PartitionConfig{MaxRulesPerPartition: len(spec.Policy)/2 + 1},
		})
		if err != nil {
			panic(err)
		}
		runTrace(dn.InjectPacket, dn.Run, flows)
		total := dn.M.Delivered + dn.M.Drops.Policy
		if total == 0 {
			continue
		}
		res.Points = append(res.Points, TimeoutPoint{
			IdleTimeout:     idle,
			MissRate:        float64(dn.M.Redirects) / float64(total),
			ResidentEntries: dn.CacheEntries(),
		})
	}
	return res
}

// Render prints the F10 table.
func (r *TimeoutResult) Render() string {
	var b strings.Builder
	b.WriteString(header("F10", "cache idle-timeout sensitivity (Zipf trace, campus)"))
	var tb metrics.Table
	tb.AddRow("idle-timeout", "miss-rate", "resident-entries")
	for _, p := range r.Points {
		label := metrics.FormatDuration(p.IdleTimeout)
		if p.IdleTimeout == 0 {
			label = "never"
		}
		tb.AddRow(label, fmt.Sprintf("%.4f", p.MissRate),
			fmt.Sprintf("%d", p.ResidentEntries))
	}
	b.WriteString(tb.String())
	return b.String()
}

// --- F11: control-plane load -----------------------------------------------------

// ControlLoadResult compares controller message load.
type ControlLoadResult struct {
	Flows uint64
	// DIFANEProactive counts the one-time rule installs the DIFANE
	// controller pushes (partition + authority rules, all switches).
	DIFANEProactive int
	// DIFANERuntime counts runtime controller messages (zero by design:
	// cache installs flow authority→ingress, not through the controller).
	DIFANERuntime uint64
	// NOXRuntime counts per-flow controller interactions.
	NOXRuntime uint64
}

// FigControlLoad counts what the central controller must handle per
// workload: the paper's architectural claim is that DIFANE reduces the
// controller to proactive rule distribution, while reactive designs pay
// one controller transaction per new flow, forever.
func FigControlLoad(o Options) *ControlLoadResult {
	spec := workload.VPNNetwork(o.Seed, o.Scale)
	flows := workload.UniformTraffic(spec, workload.TrafficConfig{
		Flows: scaleInt(o, 50000), Rate: 10000, Seed: o.Seed + 60,
	})
	res := &ControlLoadResult{Flows: uint64(len(flows))}

	auths := core.PlaceAuthorities(spec.Graph, 2)
	dn, err := core.NewNetwork(spec.Graph, auths, spec.Policy, core.NetworkConfig{
		Strategy: core.StrategyCover,
	})
	if err != nil {
		panic(err)
	}
	// Proactive install cost: every rule resident in partition and
	// authority tables was one controller flow-mod.
	for _, sw := range dn.Switches {
		res.DIFANEProactive += sw.Table(proto.TablePartition).Len()
		res.DIFANEProactive += sw.Table(proto.TableAuthority).Len()
	}
	runTrace(dn.InjectPacket, dn.Run, flows)
	res.DIFANERuntime = 0 // cache installs are authority→ingress, data-plane side

	bn, err := baseline.NewNetwork(spec.Graph, spec.Policy, baseline.Config{
		ControllerNode: uint32(spec.Graph.Nodes()[0]),
	})
	if err != nil {
		panic(err)
	}
	runTrace(bn.InjectPacket, bn.Run, flows)
	res.NOXRuntime = bn.ControllerSetups
	return res
}

// Render prints the F11 comparison.
func (r *ControlLoadResult) Render() string {
	var b strings.Builder
	b.WriteString(header("F11", "central-controller load per workload"))
	var tb metrics.Table
	tb.AddRow("system", "proactive installs", "runtime msgs", "msgs/flow")
	tb.AddRowf("difane", r.DIFANEProactive, r.DIFANERuntime,
		fmt.Sprintf("%.4f", float64(r.DIFANERuntime)/float64(r.Flows)))
	tb.AddRowf("nox-like", 0, r.NOXRuntime,
		fmt.Sprintf("%.4f", float64(r.NOXRuntime)/float64(r.Flows)))
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "(%d new flows; DIFANE's proactive cost amortizes over all of them)\n", r.Flows)
	return b.String()
}

// --- F12: link-load concentration near authority switches ---------------------------

// LinkLoadPoint is one k sample.
type LinkLoadPoint struct {
	Authorities int
	// Concentration is max directed-link load over mean loaded-link load.
	Concentration float64
	// MaxLoad is packets on the hottest link.
	MaxLoad uint64
	// DetourShare is the fraction of link traversals attributable to
	// redirected packets (total vs a no-detour baseline).
	DetourShare float64
}

// LinkLoadResult is the F12 sweep.
type LinkLoadResult struct{ Points []LinkLoadPoint }

// FigLinkLoad measures how redirect detours concentrate traffic on the
// links around authority switches, and how adding (fully replicated)
// authorities spreads it — the flip side of the stretch experiment.
func FigLinkLoad(o Options) *LinkLoadResult {
	spec := workload.CampusNetwork(o.Seed, o.Scale)
	flows := workload.UniformTraffic(spec, workload.TrafficConfig{
		Flows: scaleInt(o, 10000), Rate: 5000, Seed: o.Seed + 90,
	})
	res := &LinkLoadResult{}
	baselineTotal := uint64(0)
	for _, k := range []int{1, 2, 4, 8} {
		auths := core.PlaceAuthorities(spec.Graph, k)
		dn, err := core.NewNetwork(spec.Graph, auths, spec.Policy, core.NetworkConfig{
			Strategy:    core.StrategyCover,
			Replication: k,
			HopByHop:    true,
			Partition:   core.PartitionConfig{MaxRulesPerPartition: len(spec.Policy)/k + 1},
		})
		if err != nil {
			panic(err)
		}
		runTrace(dn.InjectPacket, dn.Run, flows)
		total := dn.LinkLoads.Total()
		if baselineTotal == 0 {
			// Approximate the no-detour traversal count from the same run:
			// delivered packets × direct path lengths is unavailable
			// without rerunning, so use k=1's direct-delivery fraction as
			// the base and report shares relative to it.
			baselineTotal = total
		}
		res.Points = append(res.Points, LinkLoadPoint{
			Authorities:   k,
			Concentration: dn.LinkLoads.Concentration(),
			MaxLoad:       dn.LinkLoads.Max(),
			DetourShare:   float64(total) / float64(baselineTotal),
		})
	}
	return res
}

// Render prints the F12 table.
func (r *LinkLoadResult) Render() string {
	var b strings.Builder
	b.WriteString(header("F12", "link-load concentration vs # authorities (hop-by-hop, campus)"))
	var tb metrics.Table
	tb.AddRow("k", "max-link-load", "concentration", "traversals-vs-k1")
	for _, p := range r.Points {
		tb.AddRowf(p.Authorities, p.MaxLoad,
			fmt.Sprintf("%.2f", p.Concentration), fmt.Sprintf("%.3f", p.DetourShare))
	}
	b.WriteString(tb.String())
	return b.String()
}

// --- A4: load-aware rebalancing -----------------------------------------------------

// RebalanceResult compares setup throughput before and after the
// controller's load-aware partition rebalancing.
type RebalanceResult struct {
	// BeforeSetups/AfterSetups are completed setups in equal-length
	// windows before and after the rebalance.
	BeforeSetups uint64
	AfterSetups  uint64
	// LoadBefore/LoadAfter are per-authority miss shares (max fraction on
	// one switch) in each window.
	LoadBefore float64
	LoadAfter  float64
}

// AblationRebalance reproduces the load-concentration pathology the F3
// scaling experiment exposes at k=2 — nearest-replica redirection can
// send every ingress's misses to the same replica — and shows the
// controller's measured-load rebalance restoring parallelism by pinning
// partitions to balanced replicas.
func AblationRebalance(o Options) *RebalanceResult {
	perAuthority := 4000.0
	window := 1.0
	if o.Scale >= workload.ScaleBench {
		perAuthority = 50000
	}
	offered := 2 * perAuthority
	spec := workload.VPNNetwork(o.Seed, o.Scale)
	auths := core.PlaceAuthorities(spec.Graph, 2)
	dn, err := core.NewNetwork(spec.Graph, auths, spec.Policy, core.NetworkConfig{
		Strategy:       core.StrategyExact,
		AuthorityRate:  perAuthority,
		AuthorityQueue: 4096,
		Partition:      core.PartitionConfig{MaxRulesPerPartition: len(spec.Policy)/8 + 1},
	})
	if err != nil {
		panic(err)
	}
	c := core.NewController(dn)

	inject := func(seed int64, start float64) {
		flows := workload.UniformTraffic(spec, workload.TrafficConfig{
			Flows: int(offered * window), Rate: offered, Seed: seed,
		})
		for _, f := range flows {
			dn.InjectPacket(start+f.Start, f.Ingress, f.Key, f.Size, 0)
		}
	}

	res := &RebalanceResult{}
	maxShare := func(base map[uint32]uint64, cur map[uint32]uint64) float64 {
		var total, max uint64
		for id, v := range cur {
			d := v - base[id]
			total += d
			if d > max {
				max = d
			}
		}
		if total == 0 {
			return 0
		}
		return float64(max) / float64(total)
	}

	inject(o.Seed+80, 0)
	dn.Run(window + 0.5)
	res.BeforeSetups = dn.M.SetupsCompleted
	load1 := dn.AuthorityMissLoad()
	res.LoadBefore = maxShare(map[uint32]uint64{}, load1)

	c.RebalanceByLoad()

	inject(o.Seed+81, window+1)
	dn.Run(2*window + 2)
	res.AfterSetups = dn.M.SetupsCompleted - res.BeforeSetups
	// Rebalancing replaced the partition handlers, so their miss counters
	// restarted at zero: the post-wave counts are wave-2 loads directly.
	res.LoadAfter = maxShare(map[uint32]uint64{}, dn.AuthorityMissLoad())
	return res
}

// Render prints the A4 comparison.
func (r *RebalanceResult) Render() string {
	var b strings.Builder
	b.WriteString(header("A4", "load-aware partition rebalancing (k=2, offered 2x one authority)"))
	var tb metrics.Table
	tb.AddRow("phase", "setups", "max authority share")
	tb.AddRowf("before rebalance", r.BeforeSetups, fmt.Sprintf("%.2f", r.LoadBefore))
	tb.AddRowf("after rebalance", r.AfterSetups, fmt.Sprintf("%.2f", r.LoadAfter))
	b.WriteString(tb.String())
	return b.String()
}

// --- A3: eviction-policy ablation ---------------------------------------------------

// EvictionRow is one eviction policy's sample.
type EvictionRow struct {
	Policy    core.EvictionChoice
	MissRate  float64
	Evictions uint64
}

// AblationEvictionResult is the A3 table.
type AblationEvictionResult struct {
	CacheSize int
	Rows      []EvictionRow
}

// AblationEviction compares LRU, LFU, and cost-aware victim selection for
// undersized ingress caches on a Zipf trace. LRU tracks recency (good
// under drifting popularity); LFU protects heavy hitters; the cost-aware
// scorer prices each entry's predicted miss cost from observed redirect
// latency and region hit rates (F6b sweeps it against a TCAM budget).
func AblationEviction(o Options) *AblationEvictionResult {
	spec := workload.CampusNetwork(o.Seed, o.Scale)
	flows := workload.GenerateTraffic(spec, workload.TrafficConfig{
		Flows: scaleInt(o, 20000), Rate: 5000,
		Population: scaleInt(o, 20000), ZipfAlpha: 1.1, // mild skew stresses eviction
		PacketsMean: 4, Seed: o.Seed + 70,
	})
	cacheSize := 64
	if o.Scale < workload.ScaleBench {
		cacheSize = 4 // small enough to force evictions on the short trace
	}
	res := &AblationEvictionResult{CacheSize: cacheSize}
	for _, pol := range []core.EvictionChoice{core.EvictDefaultLRU, core.EvictLFU, core.EvictCostAware} {
		auths := core.PlaceAuthorities(spec.Graph, 2)
		dn, err := core.NewNetwork(spec.Graph, auths, spec.Policy, core.NetworkConfig{
			Strategy:      core.StrategyExact, // per-flow entries stress the cache
			CacheCapacity: cacheSize,
			CacheEviction: pol,
			Partition:     core.PartitionConfig{MaxRulesPerPartition: len(spec.Policy)/2 + 1},
		})
		if err != nil {
			panic(err)
		}
		runTrace(dn.InjectPacket, dn.Run, flows)
		total := dn.M.Delivered + dn.M.Drops.Policy
		var evictions uint64
		for _, sw := range dn.Switches {
			evictions += sw.Table(proto.TableCache).Evictions.Load()
		}
		res.Rows = append(res.Rows, EvictionRow{
			Policy:    pol,
			MissRate:  float64(dn.M.Redirects) / float64(total),
			Evictions: evictions,
		})
	}
	return res
}

// --- F6b: miss rate vs TCAM budget under eviction policies ----------------------

// CacheBudgetPoint is one (policy, budget) sample.
type CacheBudgetPoint struct {
	Policy    core.EvictionChoice
	Budget    int
	MissRate  float64
	Evictions uint64
}

// CacheBudgetResult is the F6b sweep.
type CacheBudgetResult struct {
	Points  []CacheBudgetPoint
	Packets uint64
}

// FigCacheBudget is the adaptive-caching ablation: the same deterministic
// flash-crowd → scan → flash-crowd subscriber workload replayed under hard
// per-switch TCAM budgets (cache capacity is whatever the authority and
// partition tables leave over), once per eviction policy. LRU lets the
// scan phase walk the flash crowd out of the cache; the cost-aware scorer
// prices each entry's predicted miss cost — and adapts timeouts and
// aggregates near-microflow entries into covers — so at equal budget its
// miss rate should sit at or below LRU's across the sweep.
func FigCacheBudget(o Options) *CacheBudgetResult {
	spec := workload.CampusNetwork(o.Seed, o.Scale)
	budgets := []int{64, 128, 256, 512}
	phaseUnit := 2.0
	if o.Scale < workload.ScaleBench {
		budgets = []int{16, 32}
		phaseUnit = 1.0
	}
	res := &CacheBudgetResult{}
	for _, budget := range budgets {
		for _, pol := range []core.EvictionChoice{core.EvictDefaultLRU, core.EvictLFU, core.EvictCostAware} {
			// A fresh engine per cell with the same seed: every cell replays
			// byte-identical traffic, so the policies are directly comparable.
			eng := subscriber.NewEngine(spec, subscriber.Config{
				Subscribers: scaleInt(o, 20000),
				ArrivalRate: 400, MeanSessionLife: 1, PacketRate: 4,
				Seed: o.Seed + 90,
			}, []subscriber.Phase{
				subscriber.Steady(phaseUnit),
				subscriber.FlashCrowd(2*phaseUnit, 4, 16),
				subscriber.Scan(phaseUnit, 3),
				subscriber.FlashCrowd(phaseUnit, 4, 16),
			})
			auths := core.PlaceAuthorities(spec.Graph, 2)
			dn, err := core.NewNetwork(spec.Graph, auths, spec.Policy, core.NetworkConfig{
				Strategy:      core.StrategyExact, // per-flow entries stress the budget
				CacheEviction: pol,
				TCAMBudget:    budget,
				Partition:     core.PartitionConfig{MaxRulesPerPartition: len(spec.Policy)/2 + 1},
			})
			if err != nil {
				panic(err)
			}
			for !eng.Done() {
				tick := eng.Advance(0.05)
				// Batch aliases the engine's buffer, but InjectBatch copies
				// each packet into its event closure synchronously, so no
				// defensive copy is needed before the next Advance.
				dn.InjectBatch(tick.Batch)
				dn.Run(eng.Now())
			}
			dn.Run(eng.Now() + 5)
			total := dn.M.Delivered + dn.M.Drops.Policy
			if total == 0 {
				continue
			}
			res.Packets = total
			var evictions uint64
			for _, sw := range dn.Switches {
				evictions += sw.Table(proto.TableCache).Evictions.Load()
			}
			res.Points = append(res.Points, CacheBudgetPoint{
				Policy:    pol,
				Budget:    budget,
				MissRate:  float64(dn.M.Redirects) / float64(total),
				Evictions: evictions,
			})
		}
	}
	return res
}

// Render prints the F6b table.
func (r *CacheBudgetResult) Render() string {
	var b strings.Builder
	b.WriteString(header("F6b", "cache miss rate vs TCAM budget (flash-crowd + scan, exact entries)"))
	var tb metrics.Table
	tb.AddRow("budget", "policy", "miss-rate", "evictions")
	for _, p := range r.Points {
		tb.AddRow(fmt.Sprintf("%d", p.Budget), p.Policy.String(),
			fmt.Sprintf("%.4f", p.MissRate), fmt.Sprintf("%d", p.Evictions))
	}
	b.WriteString(tb.String())
	return b.String()
}

// Render prints the A3 table.
func (r *AblationEvictionResult) Render() string {
	var b strings.Builder
	b.WriteString(header("A3", fmt.Sprintf("cache eviction ablation (cache=%d, exact entries)", r.CacheSize)))
	var tb metrics.Table
	tb.AddRow("policy", "miss-rate", "evictions")
	for _, row := range r.Rows {
		tb.AddRow(row.Policy.String(), fmt.Sprintf("%.4f", row.MissRate),
			fmt.Sprintf("%d", row.Evictions))
	}
	b.WriteString(tb.String())
	return b.String()
}
