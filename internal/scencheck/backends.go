package scencheck

import (
	"fmt"
	"os"
	"reflect"
	"time"

	"difane/internal/baseline"
	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/oracle"
	"difane/internal/proto"
	"difane/internal/topo"
	"difane/internal/wire"
)

// Deployment knobs shared by all backends so the three modes are compared
// under the same policy-plane shape: small partitions force multi-partition
// assignments (redirect paths get exercised) and a small cache capacity
// forces eviction churn.
const (
	maxRulesPerPartition = 4
	cacheCapacity        = 8
	replication          = 2
)

func buildGraph(sc Scenario) *topo.Graph {
	g := topo.NewGraph()
	for _, id := range sc.Switches {
		g.AddNode(topo.NodeID(id))
	}
	for _, l := range sc.Links {
		g.AddLink(topo.NodeID(l.A), topo.NodeID(l.B), l.Latency)
	}
	return g
}

// observedFromDelta classifies a packet's terminal outcome from which
// accounting counter moved. Redirect sheds land in the queue-drop bucket:
// both are "the network refused under load", and neither is ever expected
// in a checker scenario (rates are unbounded).
func observedFromDelta(d Totals) observed {
	obs := observed{accounted: d.Sum()}
	switch {
	case d.Delivered > 0:
		obs.kind = core.VerdictDelivered
	case d.PolicyDrops > 0:
		obs.kind = core.VerdictPolicyDrop
	case d.Holes > 0:
		obs.kind = core.VerdictHole
	case d.QueueDrops > 0 || d.Shed > 0:
		obs.kind = core.VerdictQueueDrop
	case d.Unreachable > 0:
		obs.kind = core.VerdictUnreachable
	}
	return obs
}

// ---------------------------------------------------------------------------
// Simulator backend

type simBackend struct {
	sc  Scenario
	opt Options

	n    *core.Network
	ctl  *core.Controller
	jdir string

	policy    []flowspace.Rule
	ctlDead   bool
	lastEpoch uint64
	lastEvent *core.VerdictEvent
	seq       uint64
	nInj      uint64
}

func simNetworkConfig(sc Scenario) core.NetworkConfig {
	return core.NetworkConfig{
		Strategy:      sc.Strategy,
		CacheCapacity: cacheCapacity,
		CacheEviction: sc.Eviction,
		TCAMBudget:    sc.TCAMBudget,
		Replication:   replication,
		Partition:     core.PartitionConfig{MaxRulesPerPartition: maxRulesPerPartition},
		// Adapt fast relative to the per-packet 1s quiescence windows, so
		// timeout adaptation and cover aggregation fire mid-scenario where
		// the oracle diff and cache-soundness audit can see their effects.
		CacheAdaptInterval: 0.05,
	}
}

func newSimBackend(sc Scenario, opt Options) (*simBackend, error) {
	b := &simBackend{sc: sc, opt: opt, policy: opt.backendPolicy(sc.Policy)}
	n, err := core.NewNetwork(buildGraph(sc), sc.Authorities, b.policy, simNetworkConfig(sc))
	if err != nil {
		return nil, err
	}
	n.Observer = func(ev core.VerdictEvent) { b.lastEvent = &ev }
	b.n = n
	b.jdir, err = os.MkdirTemp("", "scencheck-sim-*")
	if err != nil {
		return nil, err
	}
	b.ctl, err = core.NewControllerWithJournal(n, b.jdir)
	if err != nil {
		os.RemoveAll(b.jdir)
		return nil, err
	}
	b.lastEpoch = b.ctl.Epoch
	return b, nil
}

func (b *simBackend) totals() Totals   { return measTotals(&b.n.M) }
func (b *simBackend) injected() uint64 { return b.nInj }

func (b *simBackend) packet(st Step) (observed, error) {
	before := b.totals()
	b.lastEvent = nil
	b.n.InjectPacket(b.n.Eng.Now()+0.001, st.Ingress, st.Key, 100, b.seq)
	b.seq++
	b.nInj++
	b.n.Run(b.n.Eng.Now() + 1.0)
	obs := observedFromDelta(b.totals().sub(before))
	if ev := b.lastEvent; ev != nil && ev.Kind == core.VerdictDelivered {
		obs.egress, obs.hasEgress = ev.Egress, true
	}
	return obs, nil
}

func (b *simBackend) update(policy []flowspace.Rule) error {
	if b.ctl == nil {
		return fmt.Errorf("policy update with controller down")
	}
	_, cleanupAt, err := b.ctl.UpdatePolicyConsistent(policy)
	if err != nil {
		return err
	}
	b.policy = policy
	b.n.Run(cleanupAt + 0.01)
	return b.ctl.JournalErr
}

func (b *simBackend) killSwitch(id uint32) error {
	b.n.FailAuthority(id)
	if b.ctl != nil {
		if isAuthority(b.sc, id) {
			b.ctl.OnAuthorityFailure(id)
		}
		b.ctl.OnTopologyChange()
	}
	b.n.Run(b.n.Eng.Now() + 1.0)
	return nil
}

func (b *simBackend) healSwitch(id uint32) error {
	b.n.Topo.SetNode(topo.NodeID(id), true)
	if b.ctl != nil {
		b.ctl.OnTopologyChange()
	}
	b.n.Run(b.n.Eng.Now() + 1.0)
	return nil
}

func (b *simBackend) killController() error {
	if b.ctl == nil {
		return nil
	}
	// Crash: no shutdown handshake beyond losing the journal handle.
	b.lastEpoch = b.ctl.Epoch
	b.ctl.Journal().Close()
	b.ctl = nil
	b.ctlDead = true
	return nil
}

func (b *simBackend) restoreController() error {
	if !b.ctlDead {
		return nil
	}
	ctl, _, err := core.NewControllerFromJournal(b.n, b.jdir)
	if err != nil {
		return err
	}
	if ctl.Epoch <= b.lastEpoch {
		return fmt.Errorf("recovered epoch %d, want > %d", ctl.Epoch, b.lastEpoch)
	}
	b.ctl, b.lastEpoch, b.ctlDead = ctl, ctl.Epoch, false
	b.n.Run(b.n.Eng.Now() + 1.0)
	return nil
}

func isAuthority(sc Scenario, id uint32) bool {
	for _, a := range sc.Authorities {
		if a == id {
			return true
		}
	}
	return false
}

func (b *simBackend) audit() []string {
	var out []string
	// (c) Every cached rule must sit inside some authority rule's clipped
	// region with the same action — a cache can only ever specialize the
	// authority tables, never invent behaviour.
	partRules := make([][]flowspace.Rule, len(b.n.Assignment.Partitions))
	for i, p := range b.n.Assignment.Partitions {
		partRules[i] = p.Rules
	}
	for _, swID := range b.sc.Switches {
		for _, r := range b.n.Switches[swID].Table(proto.TableCache).Rules() {
			if !oracle.CacheRuleSound(r, partRules) {
				out = append(out, fmt.Sprintf(
					"cache-soundness: switch %d cache rule %d (%v -> %v) not contained in any authority rule",
					swID, r.ID, r.Match, r.Action))
			}
		}
	}
	out = append(out, b.auditConvergence()...)
	return out
}

// auditConvergence checks invariant (d): after the scenario quiesces (all
// switches healed, controller live), the deployed state must equal what a
// fresh controller would compute from the current policy — partitions,
// replica placement, per-authority rule tables, and partition rules.
func (b *simBackend) auditConvergence() []string {
	var out []string
	parts := core.BuildPartitions(b.policy, core.PartitionConfig{MaxRulesPerPartition: maxRulesPerPartition})
	fresh, err := core.AssignWithReplication(parts, b.sc.Authorities, replication)
	if err != nil {
		return []string{fmt.Sprintf("convergence: fresh assignment: %v", err)}
	}
	got := normalizeAssignment(b.n.Assignment)
	want := normalizeAssignment(fresh)
	if !reflect.DeepEqual(got, want) {
		out = append(out, fmt.Sprintf(
			"convergence: deployed assignment differs from a fresh controller's: got %+v want %+v", got, want))
		return out // downstream table checks would only echo the same skew
	}
	a := b.n.Assignment
	for _, swID := range b.sc.Switches {
		sw := b.n.Switches[swID]
		// Authority tables hold exactly the union of hosted partitions' rules.
		if isAuthority(b.sc, swID) {
			want := map[string]bool{}
			for i := range a.Partitions {
				if !contains(a.ReplicasFor(i), swID) {
					continue
				}
				for _, r := range a.Partitions[i].Rules {
					want[ruleKey(r)] = true
				}
			}
			gotRules := sw.Table(proto.TableAuthority).Rules()
			seen := map[string]bool{}
			for _, r := range gotRules {
				k := ruleKey(r)
				seen[k] = true
				if !want[k] {
					out = append(out, fmt.Sprintf(
						"convergence: authority %d holds unexpected rule %s", swID, k))
				}
			}
			for k := range want {
				if !seen[k] {
					out = append(out, fmt.Sprintf(
						"convergence: authority %d missing rule %s", swID, k))
				}
			}
		}
		// Partition rules redirect every partition to a hosting replica.
		havePrimary := make([]bool, len(a.Partitions))
		for _, r := range sw.Table(proto.TablePartition).Rules() {
			i, ok := a.PartitionOfRuleID(core.PartitionIDBase, r.ID)
			if !ok {
				out = append(out, fmt.Sprintf(
					"convergence: switch %d partition rule %d maps to no partition", swID, r.ID))
				continue
			}
			if r.Action.Kind != flowspace.ActRedirect || !contains(a.ReplicasFor(i), r.Action.Arg) {
				out = append(out, fmt.Sprintf(
					"convergence: switch %d partition %d redirects to non-replica %v", swID, i, r.Action))
			}
			if !reflect.DeepEqual(r.Match, a.Partitions[i].Region) {
				out = append(out, fmt.Sprintf(
					"convergence: switch %d partition %d rule region %v != %v", swID, i, r.Match, a.Partitions[i].Region))
			}
			if r.ID == core.PartitionIDBase+uint64(2*i) {
				havePrimary[i] = true
			}
		}
		for i, ok := range havePrimary {
			if !ok {
				out = append(out, fmt.Sprintf(
					"convergence: switch %d lacks a primary partition rule for partition %d", swID, i))
			}
		}
	}
	return out
}

// normalizeAssignment strips the per-generation ID band policy updates OR
// into staged rule IDs, so assignments from different generations compare.
func normalizeAssignment(a core.Assignment) core.Assignment {
	out := a
	out.Partitions = make([]core.Partition, len(a.Partitions))
	for i, p := range a.Partitions {
		np := p
		np.Rules = make([]flowspace.Rule, len(p.Rules))
		for j, r := range p.Rules {
			r.ID &= 0xFFFFFFFF
			np.Rules[j] = r
		}
		out.Partitions[i] = np
	}
	return out
}

func ruleKey(r flowspace.Rule) string {
	return fmt.Sprintf("id=%d pri=%d match=%v act=%v", r.ID&0xFFFFFFFF, r.Priority, r.Match, r.Action)
}

func contains(ids []uint32, id uint32) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func (b *simBackend) close() {
	if b.ctl != nil {
		b.ctl.Journal().Close()
	}
	os.RemoveAll(b.jdir)
}

// ---------------------------------------------------------------------------
// Baseline backend

// baselineBackend drives the reactive NOX-style deployment. It has no
// fault model — the controller is an abstract station, switches don't
// fail — so kill/heal steps are no-ops and its expected-verdict dead set
// stays empty.
type baselineBackend struct {
	sc  Scenario
	opt Options

	n      *baseline.Network
	policy []flowspace.Rule
	acc    Totals // totals of torn-down incarnations (policy updates rebuild)

	lastEvent *core.VerdictEvent
	seq       uint64
	nInj      uint64
}

func newBaselineBackend(sc Scenario, opt Options) (*baselineBackend, error) {
	b := &baselineBackend{sc: sc, opt: opt}
	if err := b.deploy(opt.backendPolicy(sc.Policy)); err != nil {
		return nil, err
	}
	return b, nil
}

func (b *baselineBackend) deploy(policy []flowspace.Rule) error {
	n, err := baseline.NewNetwork(buildGraph(b.sc), policy, baseline.Config{
		ControllerNode: b.sc.Switches[0],
		CacheCapacity:  cacheCapacity,
		CacheEviction:  b.sc.Eviction,
		TCAMBudget:     b.sc.TCAMBudget,
	})
	if err != nil {
		return err
	}
	n.Observer = func(ev core.VerdictEvent) { b.lastEvent = &ev }
	b.n, b.policy = n, policy
	return nil
}

func (b *baselineBackend) totals() Totals   { return b.acc.add(measTotals(&b.n.M)) }
func (b *baselineBackend) injected() uint64 { return b.nInj }

func (b *baselineBackend) packet(st Step) (observed, error) {
	before := b.totals()
	b.lastEvent = nil
	b.n.InjectPacket(b.n.Eng.Now()+0.001, st.Ingress, st.Key, 100, b.seq)
	b.seq++
	b.nInj++
	b.n.Run(b.n.Eng.Now() + 1.0)
	obs := observedFromDelta(b.totals().sub(before))
	if ev := b.lastEvent; ev != nil && ev.Kind == core.VerdictDelivered {
		obs.egress, obs.hasEgress = ev.Egress, true
	}
	return obs, nil
}

// update rebuilds the deployment: an Ethane-style controller installs only
// exact microflow rules, so a policy change is a restart with clean caches.
func (b *baselineBackend) update(policy []flowspace.Rule) error {
	b.acc = b.acc.add(measTotals(&b.n.M))
	return b.deploy(policy)
}

func (b *baselineBackend) killSwitch(uint32) error  { return nil }
func (b *baselineBackend) healSwitch(uint32) error  { return nil }
func (b *baselineBackend) killController() error    { return nil }
func (b *baselineBackend) restoreController() error { return nil }

// audit checks the baseline's cache-soundness analogue: every installed
// microflow rule must agree with the oracle's verdict for its exact key.
func (b *baselineBackend) audit() []string {
	var out []string
	for _, swID := range b.sc.Switches {
		for _, r := range b.n.Switches[swID].Table(proto.TableCache).Rules() {
			k, exact := oracle.ExactKey(r.Match)
			if !exact {
				out = append(out, fmt.Sprintf(
					"cache-soundness: switch %d holds non-exact microflow rule %d (%v)", swID, r.ID, r.Match))
				continue
			}
			v := oracle.Evaluate(b.policy, k)
			ok := false
			switch r.Action.Kind {
			case flowspace.ActForward, flowspace.ActCount:
				ok = v.Kind == oracle.Deliver && v.Egress == r.Action.Arg
			case flowspace.ActDrop:
				ok = v.Kind == oracle.Drop
			}
			if !ok {
				out = append(out, fmt.Sprintf(
					"cache-soundness: switch %d microflow rule %d action %v disagrees with oracle %s",
					swID, r.ID, r.Action, v))
			}
		}
	}
	return out
}

func (b *baselineBackend) close() {}

func (t Totals) add(o Totals) Totals {
	return Totals{
		Delivered:   t.Delivered + o.Delivered,
		PolicyDrops: t.PolicyDrops + o.PolicyDrops,
		Holes:       t.Holes + o.Holes,
		QueueDrops:  t.QueueDrops + o.QueueDrops,
		Shed:        t.Shed + o.Shed,
		Unreachable: t.Unreachable + o.Unreachable,
	}
}

// ---------------------------------------------------------------------------
// Wire backend

// wireBackend drives the real-goroutine cluster. Kills are crash-only
// (heal steps are no-ops and the dead set never shrinks), and policy
// updates rebuild the cluster — the unified Deployment surface has no
// in-place consistent-update hook — re-applying any kills afterwards.
type wireBackend struct {
	sc  Scenario
	opt Options

	d      *wire.Deployment
	policy []flowspace.Rule
	acc    Totals
	killed map[uint32]bool

	lastEpoch uint64
	seq       uint64
	nInj      uint64
}

func wireClusterConfig(sc Scenario, policy []flowspace.Rule) wire.ClusterConfig {
	return wire.ClusterConfig{
		Switches:      sc.Switches,
		Authorities:   sc.Authorities,
		Policy:        policy,
		Strategy:      sc.Strategy,
		CacheCapacity: cacheCapacity,
		CacheEviction: sc.Eviction,
		TCAMBudget:    sc.TCAMBudget,
		// Several adaptation rounds fit inside each packet's quiescence
		// wait, mirroring the simulator backend's fast-adapt setting.
		CacheAdaptInterval: 50 * time.Millisecond,
		// Generous liveness windows: differential seeds run massively in
		// parallel, and a scheduler stall must not read as a switch death
		// (real kills short-circuit the detector via the killed flag, so
		// failover coverage doesn't depend on these timeouts).
		Heartbeat: wire.HeartbeatConfig{
			Interval:      20 * time.Millisecond,
			MissThreshold: 25,
		},
		// Same reasoning for BFD: 25ms × 20 = 500ms detect time, far past
		// any -race scheduler stall. Real kills still detect instantly via
		// the killed flag.
		BFD: wire.BFDConfig{
			Interval:   25 * time.Millisecond,
			DetectMult: 20,
		},
		// Three controller replicas: kill-controller steps kill the leader
		// and an automatic election restores service, exercising verdict
		// stability with elections in flight.
		HA: wire.HAConfig{
			Replicas:      3,
			ElectionDelay: 10 * time.Millisecond,
		},
		Retry: wire.RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
		},
		Partition: core.PartitionConfig{MaxRulesPerPartition: maxRulesPerPartition},
	}
}

func newWireBackend(sc Scenario, opt Options) (*wireBackend, error) {
	b := &wireBackend{sc: sc, opt: opt, killed: map[uint32]bool{}}
	if err := b.deploy(opt.backendPolicy(sc.Policy)); err != nil {
		return nil, err
	}
	return b, nil
}

func (b *wireBackend) deploy(policy []flowspace.Rule) error {
	d, err := wire.NewDeployment(wireClusterConfig(b.sc, policy))
	if err != nil {
		return err
	}
	for id := range b.killed {
		d.C.KillSwitch(id)
	}
	b.d, b.policy = d, policy
	b.lastEpoch = d.C.Epoch()
	return nil
}

func (b *wireBackend) totals() Totals   { return b.acc.add(measTotals(b.d.Measurements())) }
func (b *wireBackend) injected() uint64 { return b.nInj }

func (b *wireBackend) packet(st Step) (observed, error) {
	// Drain stale delivery notifications so the one we read below belongs
	// to this packet.
	for {
		select {
		case <-b.d.C.Deliveries:
			continue
		default:
		}
		break
	}
	before := b.totals()
	b.d.InjectPacket(0, st.Ingress, st.Key, 100, b.seq)
	b.seq++
	b.nInj++
	b.d.Run(5.0)
	obs := observedFromDelta(b.totals().sub(before))
	if obs.kind == core.VerdictDelivered && obs.accounted == 1 {
		select {
		case del := <-b.d.C.Deliveries:
			obs.egress, obs.hasEgress = del.Egress, true
		case <-time.After(time.Second):
			// deliver() publishes the notification before completion, so
			// this only triggers if the channel overflowed mid-drain.
		}
	}
	return obs, nil
}

func (b *wireBackend) update(policy []flowspace.Rule) error {
	b.acc = b.acc.add(measTotals(b.d.Measurements()))
	if err := b.d.Close(); err != nil {
		return err
	}
	return b.deploy(policy)
}

func (b *wireBackend) killSwitch(id uint32) error {
	if !b.d.C.KillSwitch(id) {
		return fmt.Errorf("unknown switch %d", id)
	}
	b.killed[id] = true
	return nil
}

// healSwitch is a no-op: wire-mode crashes are permanent (the goroutines
// are gone). The driver's dead set keeps the switch dead for expectations.
func (b *wireBackend) healSwitch(uint32) error { return nil }

func (b *wireBackend) killController() error {
	b.lastEpoch = b.d.C.Epoch()
	b.d.C.KillController()
	return nil
}

func (b *wireBackend) restoreController() error {
	// Under HA the election already restored service (ControllerDown is
	// usually false again by now); RestoreController revives the killed
	// replica so later kill steps still find standbys. Either way the
	// epoch must have advanced past the killed incarnation's.
	b.d.C.RestoreController()
	if e := b.d.C.Epoch(); e <= b.lastEpoch {
		return fmt.Errorf("epoch %d after restore, want > %d", e, b.lastEpoch)
	}
	b.lastEpoch = b.d.C.Epoch()
	return nil
}

// audit checks wire-mode cache soundness against the live cluster's
// assignment (rebuilds reset caches, so only current-policy rules exist).
func (b *wireBackend) audit() []string {
	var out []string
	a := b.d.C.Assignment()
	partRules := make([][]flowspace.Rule, len(a.Partitions))
	for i, p := range a.Partitions {
		partRules[i] = p.Rules
	}
	for _, swID := range b.d.C.SwitchIDs() {
		for _, r := range b.d.C.TableRules(swID, proto.TableCache) {
			if !oracle.CacheRuleSound(r, partRules) {
				out = append(out, fmt.Sprintf(
					"cache-soundness: wire switch %d cache rule %d (%v -> %v) not contained in any authority rule",
					swID, r.ID, r.Match, r.Action))
			}
		}
	}
	return out
}

func (b *wireBackend) close() { _ = b.d.Close() }
