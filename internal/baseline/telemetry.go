package baseline

import (
	"difane/internal/core"
	"difane/internal/telemetry"
)

// Telemetry returns one scrape of the baseline's metric registry — the
// same schema core.RegisterMeasurements gives the DIFANE backends, plus
// the reactive controller's own setup counter. The baseline has no flight
// recorder, so the trace accounting in the snapshot is zero.
func (n *Network) Telemetry() *telemetry.Snapshot {
	n.telOnce.Do(func() {
		reg := telemetry.NewRegistry()
		core.RegisterMeasurements(reg, func() *core.Measurements { return &n.M })
		reg.RegisterFunc("difane_controller_setups_total",
			"Flow setups the reactive controller processed.", telemetry.TypeCounter,
			func() float64 { return float64(n.ControllerSetups) })
		n.telReg = reg
	})
	return &telemetry.Snapshot{Metrics: n.telReg.Snapshot()}
}
