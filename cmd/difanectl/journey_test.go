package main

import (
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"difane/internal/baseline"
	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/packet"
	"difane/internal/telemetry"
	"difane/internal/topo"
	"difane/internal/wire"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	fn()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	return out
}

func journeyPolicy() []flowspace.Rule {
	return []flowspace.Rule{
		{ID: 1, Priority: 10,
			Match:  flowspace.MatchAll().WithExact(flowspace.FTPDst, 80),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 4}},
		{ID: 2, Priority: 0, Match: flowspace.MatchAll(),
			Action: flowspace.Action{Kind: flowspace.ActDrop}},
	}
}

func journeyKey() flowspace.Key {
	var k flowspace.Key
	k[flowspace.FIPSrc] = 1
	k[flowspace.FTPDst] = 80
	return k
}

// serveRecorder exposes a backend's flight recorder over the same mux the
// wire cluster serves, so `difanectl journey` reads sim and baseline
// deployments exactly like a live cluster.
func serveRecorder(t *testing.T, rec *telemetry.Recorder) string {
	t.Helper()
	srv := httptest.NewServer(telemetry.Handler(telemetry.NewRegistry(), rec, nil))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// checkJourneyOutput asserts the rendered journey tells the redirected
// first-packet story: a completeness header, a delivered trace line, and
// the redirect → authority spans in the body.
func checkJourneyOutput(t *testing.T, backend, out string) {
	t.Helper()
	for _, want := range []string{
		"complete", "trace ", "delivered in", "redirect", "authority", "ingress",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("%s: journey output missing %q:\n%s", backend, want, out)
		}
	}
}

// TestJourneyCommandRendersAllBackends drives the same redirected flow
// through all three backends and asserts `difanectl journey` renders the
// same end-to-end story from each — the cross-backend schema acceptance
// check.
func TestJourneyCommandRendersAllBackends(t *testing.T) {
	t.Run("sim", func(t *testing.T) {
		n, err := core.NewNetwork(topo.Linear(5, 0.001), []uint32{2}, journeyPolicy(),
			core.NetworkConfig{Tracing: true, TraceSample: 1})
		if err != nil {
			t.Fatal(err)
		}
		n.InjectPacket(0, 0, journeyKey(), 100, 0)
		n.Run(1)
		addr := serveRecorder(t, n.Recorder())
		out := captureStdout(t, func() {
			if code := runJourney([]string{"-addr", addr}); code != 0 {
				t.Errorf("journey exited %d", code)
			}
		})
		checkJourneyOutput(t, "sim", out)
	})

	t.Run("baseline", func(t *testing.T) {
		n, err := baseline.NewNetwork(topo.Linear(5, 0.001), journeyPolicy(),
			baseline.Config{ControllerNode: 2, Tracing: true, TraceSample: 1})
		if err != nil {
			t.Fatal(err)
		}
		n.InjectPacket(0, 0, journeyKey(), 100, 0)
		n.Run(1)
		addr := serveRecorder(t, n.Recorder())
		out := captureStdout(t, func() {
			if code := runJourney([]string{"-addr", addr}); code != 0 {
				t.Errorf("journey exited %d", code)
			}
		})
		checkJourneyOutput(t, "baseline", out)
	})

	t.Run("wire", func(t *testing.T) {
		c, err := wire.NewCluster(wire.ClusterConfig{
			Switches:    []uint32{0, 1, 2, 3, 4},
			Authorities: []uint32{2},
			Policy:      journeyPolicy(),
			Telemetry: wire.TelemetryConfig{
				Addr: "127.0.0.1:0", Tracing: true, TraceSample: 1,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		h := packet.Header{
			EthType: packet.EthTypeIPv4, IPProto: packet.ProtoTCP,
			IPSrc: 1, IPDst: packet.IP4(10, 0, 0, 1), TPDst: 80,
		}
		c.Inject(0, h, 100)
		select {
		case <-c.Deliveries:
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for delivery")
		}
		out := captureStdout(t, func() {
			if code := runJourney([]string{"-addr", c.TelemetryAddr()}); code != 0 {
				t.Errorf("journey exited %d", code)
			}
		})
		checkJourneyOutput(t, "wire", out)
	})
}
