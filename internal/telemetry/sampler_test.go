package telemetry

import "testing"

func TestSamplerOffMintsNothing(t *testing.T) {
	s := NewSampler(0)
	for seq := uint64(0); seq < 1000; seq++ {
		if id := s.TraceID(12345, seq); id != 0 {
			t.Fatalf("sampler off minted trace %x for seq %d", id, seq)
		}
	}
	if NewSampler(-3).Rate() != 0 {
		t.Fatal("negative rate must clamp to off")
	}
}

func TestSamplerRateOneTracesEverything(t *testing.T) {
	s := NewSampler(1)
	for seq := uint64(0); seq < 1000; seq++ {
		if s.TraceID(12345, seq) == 0 {
			t.Fatalf("1-in-1 sampling skipped seq %d", seq)
		}
	}
}

// The decision must be a pure function of (flowHash, seq): two independent
// samplers at the same rate — the three backends replaying one workload —
// agree on which packets are sampled and on their trace IDs.
func TestSamplerDeterministicAcrossInstances(t *testing.T) {
	a, b := NewSampler(16), NewSampler(16)
	sampled := 0
	for flow := uint64(1); flow <= 64; flow++ {
		for seq := uint64(0); seq < 64; seq++ {
			ia, ib := a.TraceID(flow, seq), b.TraceID(flow, seq)
			if ia != ib {
				t.Fatalf("flow %d seq %d: %x vs %x", flow, seq, ia, ib)
			}
			if ia != 0 {
				sampled++
			}
		}
	}
	if sampled == 0 {
		t.Fatal("1-in-16 sampling over 4096 packets selected nothing")
	}
}

// 1-in-N should select roughly 1/N of packets — the hash is not a counter,
// so allow a wide band, but a broken mixer (everything or nothing) fails.
func TestSamplerFractionNearRate(t *testing.T) {
	const n, packets = 64, 100_000
	s := NewSampler(n)
	sampled := 0
	for i := uint64(0); i < packets; i++ {
		if s.TraceID(i*2654435761, i) != 0 {
			sampled++
		}
	}
	want := float64(packets) / n
	if f := float64(sampled); f < want/2 || f > want*2 {
		t.Fatalf("1-in-%d sampled %d of %d packets (want ~%.0f)", n, sampled, packets, want)
	}
}

func TestSamplerSetRateAtRuntime(t *testing.T) {
	s := NewSampler(0)
	if s.Rate() != 0 {
		t.Fatalf("rate = %d, want 0", s.Rate())
	}
	s.SetRate(1)
	if s.TraceID(7, 0) == 0 {
		t.Fatal("rate 1 after SetRate must trace")
	}
	s.SetRate(0)
	if s.TraceID(7, 0) != 0 {
		t.Fatal("SetRate(0) must stop tracing")
	}
}

// Trace IDs must never collide with the reserved "unsampled" zero and
// should be distinct across packets (they key journey assembly).
func TestSamplerIDsNonZeroAndDistinct(t *testing.T) {
	s := NewSampler(1)
	seen := make(map[uint64]bool)
	for seq := uint64(0); seq < 10_000; seq++ {
		id := s.TraceID(99, seq)
		if id == 0 {
			t.Fatalf("seq %d: zero trace ID", seq)
		}
		if seen[id] {
			t.Fatalf("seq %d: duplicate trace ID %x", seq, id)
		}
		seen[id] = true
	}
}
