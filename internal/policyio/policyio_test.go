package policyio

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"difane/internal/flowspace"
	"difane/internal/packet"
)

const samplePolicy = `
# campus border ACL
rule 1 prio 100 ip_src=10.0.0.0/8 tp_dst=80 -> forward(4)
rule 2 prio 90  ip_proto=udp tp_dst=53 -> drop
rule 3 prio 80  eth_type=0x0806 -> forward(2)
rule 4 prio 70  vlan=100 in_port=3 -> count
rule 5 prio 60  eth_src=00:11:22:33:44:55 -> drop

rule 9 prio 0 -> drop
`

func TestParseSample(t *testing.T) {
	rules, err := Parse(strings.NewReader(samplePolicy))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 6 {
		t.Fatalf("rules = %d", len(rules))
	}
	r := rules[0]
	if r.ID != 1 || r.Priority != 100 {
		t.Fatalf("rule 1 header: %+v", r)
	}
	var k flowspace.Key
	k[flowspace.FIPSrc] = uint64(packet.IP4(10, 1, 2, 3))
	k[flowspace.FTPDst] = 80
	if !r.Match.Matches(k) {
		t.Fatal("rule 1 must match 10/8:80")
	}
	k[flowspace.FIPSrc] = uint64(packet.IP4(11, 1, 2, 3))
	if r.Match.Matches(k) {
		t.Fatal("rule 1 must not match 11.x")
	}
	if r.Action != (flowspace.Action{Kind: flowspace.ActForward, Arg: 4}) {
		t.Fatalf("rule 1 action: %v", r.Action)
	}
	if rules[1].Match.Fields[flowspace.FIPProto].Value != packet.ProtoUDP {
		t.Fatal("udp must parse to 17")
	}
	if rules[2].Match.Fields[flowspace.FEthType].Value != 0x0806 {
		t.Fatal("hex eth_type")
	}
	if rules[4].Match.Fields[flowspace.FEthSrc].Value != 0x001122334455 {
		t.Fatalf("mac = %x", rules[4].Match.Fields[flowspace.FEthSrc].Value)
	}
	if !rules[5].Match.IsAll() {
		t.Fatal("field-less rule must match all")
	}
}

func TestParsePortRangeExpansion(t *testing.T) {
	rules, err := Parse(strings.NewReader("rule 7 prio 5 tp_dst=1-32766 ip_proto=udp -> drop\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 28 {
		t.Fatalf("range [1,32766] must expand to 28 rules, got %d", len(rules))
	}
	// Expanded rules share priority and action, differ in ID and match.
	seen := map[uint64]bool{}
	for _, r := range rules {
		if r.Priority != 5 || r.Action.Kind != flowspace.ActDrop {
			t.Fatalf("expanded rule differs: %+v", r)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate expanded ID %d", r.ID)
		}
		seen[r.ID] = true
	}
	// Coverage: port 100 in, port 0 and 32767 out.
	covered := func(port uint64) bool {
		var k flowspace.Key
		k[flowspace.FTPDst] = port
		k[flowspace.FIPProto] = packet.ProtoUDP
		for _, r := range rules {
			if r.Match.Matches(k) {
				return true
			}
		}
		return false
	}
	if !covered(100) || covered(0) || covered(32767) {
		t.Fatal("range expansion coverage wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"rule 1 prio 10 -> explode",
		"rule 1 prio 10 tp_dst=80",
		"rule x prio 10 -> drop",
		"rule 1 prio x -> drop",
		"norule 1 prio 10 -> drop",
		"rule 1 prio 10 nonsense=5 -> drop",
		"rule 1 prio 10 ip_src=999.0.0.1/8 -> drop",
		"rule 1 prio 10 ip_src=10.0.0.0/99 -> drop",
		"rule 1 prio 10 tp_dst=99999 -> drop",
		"rule 1 prio 10 tp_dst=90-80 -> drop",
		"rule 1 prio 10 vlan=9999 -> drop",
		"rule 1 prio 10 eth_src=00:11:22 -> drop",
		"rule 1 prio 10 tp_dst -> drop",
		"rule 1 prio 10 tp_src=1-5 tp_dst=1-5 -> drop",
		"rule 1 prio 10 -> forward(x)",
	}
	for _, line := range bad {
		if _, err := Parse(strings.NewReader(line)); err == nil {
			t.Fatalf("line %q must fail to parse", line)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	rules, err := Parse(strings.NewReader(samplePolicy))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, rules); err != nil {
		t.Fatal(err)
	}
	again, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\noutput was:\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(rules, again) {
		t.Fatalf("round trip differs:\n%+v\n%+v", rules, again)
	}
}

func TestWriteParseRoundTripRandomPrefixRules(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	var rules []flowspace.Rule
	for i := 0; i < 200; i++ {
		m := flowspace.MatchAll().
			WithPrefix(flowspace.FIPSrc, rng.Uint64(), uint(rng.Intn(33))).
			WithPrefix(flowspace.FIPDst, rng.Uint64(), uint(rng.Intn(33)))
		if rng.Intn(2) == 0 {
			m = m.WithExact(flowspace.FTPDst, uint64(rng.Intn(65536)))
		}
		action := flowspace.Action{Kind: flowspace.ActForward, Arg: uint32(rng.Intn(16))}
		if rng.Intn(3) == 0 {
			action = flowspace.Action{Kind: flowspace.ActDrop} // Arg meaningless for drops
		}
		rules = append(rules, flowspace.Rule{
			ID: uint64(i + 1), Priority: int32(rng.Intn(1000)),
			Match:  m,
			Action: action,
		})
	}
	var buf bytes.Buffer
	if err := Write(&buf, rules); err != nil {
		t.Fatal(err)
	}
	again, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rules, again) {
		t.Fatal("random prefix rules must round trip")
	}
}

func TestWriteRejectsNonPrefixTernary(t *testing.T) {
	r := flowspace.Rule{
		ID: 1, Priority: 1,
		Match:  flowspace.Match{Fields: [flowspace.NumFields]flowspace.Field{flowspace.FIPSrc: {Value: 0, Mask: 0x5}}},
		Action: flowspace.Action{Kind: flowspace.ActDrop},
	}
	if err := Write(&bytes.Buffer{}, []flowspace.Rule{r}); err == nil {
		t.Fatal("non-contiguous mask must be rejected")
	}
}

func TestParseIgnoresCommentsAndBlanks(t *testing.T) {
	in := "\n\n# hello\n   # indented comment\nrule 1 prio 1 -> drop\n\n"
	rules, err := Parse(strings.NewReader(in))
	if err != nil || len(rules) != 1 {
		t.Fatalf("rules=%d err=%v", len(rules), err)
	}
}
